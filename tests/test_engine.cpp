// Engine-equivalence suite: proves the timer-wheel scheduler fires events
// in EXACTLY the order the old std::priority_queue engine did.
//
// The golden arrays and hashes below were recorded ONCE by running the
// scenarios in engine_scenarios.hpp against the pre-wheel engine (the
// recorder built event_loop.cpp at its last priority_queue revision).  They
// cover FIFO tie order, the seed-0 fuzz permutation in full, and a 16-seed
// fuzz matrix compressed to order hashes — between them the due-heap tie
// path, wheel cascades, and the far-future overflow heap.  A mismatch here
// means the engine's observable semantics changed; do NOT re-record the
// goldens without a deliberate (documented) tie-rule change.
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "engine_scenarios.hpp"
#include "sim/event_loop.hpp"
#include "sim/frame_pool.hpp"
#include "sim/task.hpp"

namespace v::test {
namespace {

constexpr int kMixedFifoGolden[] = {
    85, 92, 149, 27, 147, 154, 164, 166, 165, 167, 97, 153, 
    168, 169, 5, 83, 119, 128, 7, 50, 88, 109, 120, 134, 
    137, 157, 170, 171, 47, 3, 18, 21, 39, 48, 172, 174, 
    176, 178, 180, 177, 179, 173, 175, 181, 135, 182, 183, 8, 
    32, 44, 53, 54, 65, 74, 118, 184, 185, 61, 77, 138, 
    139, 186, 30, 76, 81, 103, 188, 190, 187, 189, 38, 43, 
    58, 82, 191, 29, 33, 35, 70, 192, 193, 14, 25, 26, 
    89, 114, 156, 194, 196, 195, 42, 198, 197, 41, 112, 127, 
    129, 200, 199, 201, 49, 51, 75, 78, 202, 204, 206, 207, 
    203, 205, 6, 11, 46, 63, 72, 91, 136, 208, 210, 212, 
    209, 211, 213, 12, 110, 142, 214, 215, 13, 60, 108, 158, 
    216, 218, 219, 217, 133, 152, 20, 56, 111, 220, 66, 95, 
    121, 222, 223, 221, 84, 93, 116, 224, 226, 227, 57, 132, 
    228, 230, 225, 229, 231, 2, 10, 24, 105, 115, 123, 125, 
    232, 234, 236, 237, 235, 15, 73, 106, 145, 238, 233, 1, 
    4, 23, 52, 79, 239, 17, 34, 40, 69, 100, 101, 117, 
    124, 155, 240, 242, 241, 243, 9, 67, 80, 86, 244, 0, 
    45, 64, 71, 96, 246, 248, 250, 245, 247, 251, 150, 151, 
    252, 249, 253, 28, 36, 99, 122, 148, 254, 256, 255, 257, 
    16, 107, 130, 131, 141, 144, 159, 258, 260, 262, 263, 259, 
    261, 68, 98, 104, 22, 55, 59, 87, 113, 264, 265, 31, 
    90, 126, 146, 266, 268, 267, 269, 19, 37, 62, 94, 102, 
    140, 143, 270, 271, 160, 161, 162, 163};
constexpr int kBurstFifoGolden[] = {
    -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 
    11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 
    23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 
    35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 
    47, 48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 
    59, -2};
constexpr int kMixedSeed0Golden[] = {
    149, 85, 92, 154, 147, 164, 27, 166, 165, 167, 153, 168, 
    97, 169, 128, 83, 119, 5, 157, 120, 50, 137, 88, 7, 
    170, 109, 134, 171, 47, 18, 48, 21, 3, 178, 39, 180, 
    172, 176, 174, 177, 179, 175, 173, 181, 135, 182, 183, 53, 
    8, 74, 44, 118, 65, 54, 184, 32, 185, 77, 139, 138, 
    186, 61, 30, 103, 188, 81, 190, 76, 187, 189, 58, 82, 
    43, 38, 191, 35, 70, 29, 33, 192, 193, 89, 26, 14, 
    114, 194, 156, 196, 25, 195, 42, 198, 197, 41, 129, 200, 
    112, 127, 199, 201, 49, 78, 202, 51, 75, 206, 204, 207, 
    203, 205, 6, 72, 46, 208, 63, 11, 136, 91, 212, 210, 
    209, 211, 213, 110, 12, 214, 142, 215, 108, 60, 218, 158, 
    216, 13, 219, 217, 152, 133, 111, 20, 220, 56, 66, 222, 
    121, 95, 223, 221, 116, 93, 224, 84, 226, 227, 132, 228, 
    57, 230, 225, 229, 231, 24, 115, 10, 123, 234, 232, 125, 
    105, 236, 2, 237, 235, 145, 106, 15, 238, 73, 233, 52, 
    79, 4, 1, 23, 239, 34, 40, 17, 69, 101, 240, 155, 
    117, 242, 100, 124, 241, 243, 67, 9, 244, 80, 86, 96, 
    45, 64, 248, 246, 0, 250, 71, 245, 247, 251, 150, 252, 
    151, 249, 253, 28, 122, 99, 36, 256, 148, 254, 255, 257, 
    144, 258, 16, 159, 131, 130, 260, 141, 262, 107, 263, 259, 
    261, 68, 104, 98, 113, 59, 87, 264, 55, 22, 265, 31, 
    126, 266, 146, 90, 268, 267, 269, 94, 62, 143, 102, 270, 
    19, 37, 140, 271, 160, 161, 162, 163};
constexpr int kBurstSeed0Golden[] = {
    -1, 33, 17, 23, 5, 34, 44, 47, 25, 20, 15, 48, 
    30, 27, 40, 50, 9, 13, 45, 46, 7, 26, 19, 10, 
    28, 51, 32, 3, 0, 53, 2, 6, 38, 11, 49, 8, 
    43, 22, 41, 14, 29, 18, 39, 24, 35, 36, 56, 21, 
    54, 55, 4, 57, 42, 37, 52, 16, 58, 12, 59, 31, 
    1, -2};
constexpr std::uint64_t kMixedSeedHashes[16] = {
    0xfc1ca8c877cb6e65ULL,     0x67e3acc237434ee3ULL,
    0x419165013b76894dULL,     0xd0088f9e865136ebULL,
    0x25a5e10c2c63de43ULL,     0x247189581b9af3abULL,
    0x00bbae81af84918fULL,     0x672613db964654b5ULL,
    0xc1210f9d1db2ce51ULL,     0x5a60a05dbda26cc5ULL,
    0xd1b9032e310d449fULL,     0x687bc8eec34c1405ULL,
    0x8b1ba41d522149e1ULL,     0x8086f5e425999afdULL,
    0xf51d6c3afe62f94dULL,     0x21f4fa4825cabeafULL,
};
constexpr std::uint64_t kBurstSeedHashes[16] = {
    0x5559d2af095cc0daULL,     0x80095daffeab8f7aULL,
    0xb3a70d4b7f99c402ULL,     0x2973c11259f1e9e0ULL,
    0x39d01f2ff643c3b0ULL,     0xc0a1f665dc651f88ULL,
    0x12c7beb7758c810cULL,     0x3d81fc0e1ef10b72ULL,
    0x907974f211feab4cULL,     0xc9e3fcd0c8a082f8ULL,
    0xe1fda967b63c7feeULL,     0x5d9e8660c5506064ULL,
    0x6490e45b3bc6d562ULL,     0xd08be3c04ab961c8ULL,
    0xece47a7a72fff352ULL,     0x676725297accee48ULL,
};

constexpr std::uint64_t kSeedBase = 0x5eed0000ULL;

void expect_order(const std::vector<int>& order, const int* golden,
                  std::size_t golden_size, const char* label) {
  ASSERT_EQ(order.size(), golden_size) << label;
  for (std::size_t i = 0; i < golden_size; ++i) {
    ASSERT_EQ(order[i], golden[i]) << label << " diverges at position " << i;
  }
}

TEST(EngineEquivalence, MixedScheduleFifoMatchesOldEngine) {
  expect_order(mixed_schedule_order(std::nullopt), kMixedFifoGolden,
               std::size(kMixedFifoGolden), "mixed/fifo");
}

TEST(EngineEquivalence, BurstFifoMatchesOldEngine) {
  expect_order(burst_order(std::nullopt), kBurstFifoGolden,
               std::size(kBurstFifoGolden), "burst/fifo");
}

TEST(EngineEquivalence, MixedScheduleSeed0MatchesOldEngine) {
  expect_order(mixed_schedule_order(kSeedBase), kMixedSeed0Golden,
               std::size(kMixedSeed0Golden), "mixed/seed0");
}

TEST(EngineEquivalence, BurstSeed0MatchesOldEngine) {
  expect_order(burst_order(kSeedBase), kBurstSeed0Golden,
               std::size(kBurstSeed0Golden), "burst/seed0");
}

// The full 16-seed fuzz matrix, compressed: identical firing order <=>
// identical FNV-1a hash (the full seed-0 arrays above keep one seed
// human-diffable when this trips).
TEST(EngineEquivalence, SixteenSeedFuzzMatrixMatchesOldEngine) {
  for (int s = 0; s < 16; ++s) {
    const std::uint64_t seed = kSeedBase + static_cast<std::uint64_t>(s);
    EXPECT_EQ(order_hash(mixed_schedule_order(seed)), kMixedSeedHashes[s])
        << "mixed schedule diverged under fuzz seed 0x" << std::hex << seed;
    EXPECT_EQ(order_hash(burst_order(seed)), kBurstSeedHashes[s])
        << "burst diverged under fuzz seed 0x" << std::hex << seed;
  }
}

// --- run_until / pending boundary semantics -------------------------------

TEST(EngineBoundary, RunUntilIncludesEventsExactlyAtDeadline) {
  sim::EventLoop loop;
  std::vector<int> fired;
  loop.schedule_at(1'000, [&fired] { fired.push_back(1); });
  loop.schedule_at(2'000, [&fired] { fired.push_back(2); });
  loop.schedule_at(2'001, [&fired] { fired.push_back(3); });
  loop.run_until(2'000);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // deadline event DID run
  EXPECT_EQ(loop.now(), 2'000);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until(2'001);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EngineBoundary, RunUntilOnEmptyQueueAdvancesTime) {
  sim::EventLoop loop;
  loop.run_until(5'000'000);
  EXPECT_EQ(loop.now(), 5'000'000);
  EXPECT_EQ(loop.pending(), 0u);
  // Time never runs backwards, even for a deadline in the past.
  loop.run_until(1'000);
  EXPECT_EQ(loop.now(), 5'000'000);
}

TEST(EngineBoundary, PendingCountsDueWheelAndOverflow) {
  sim::EventLoop loop;
  int ran = 0;
  loop.schedule_at(0, [&ran] { ++ran; });             // due (current tick)
  loop.schedule_at(50'000'000, [&ran] { ++ran; });    // wheel (50 ms out)
  constexpr sim::SimTime kFar = 6'000'000'000'000'000;  // beyond 2^36 ticks
  loop.schedule_at(kFar, [&ran] { ++ran; });          // overflow heap
  EXPECT_EQ(loop.pending(), 3u);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(loop.pending(), 2u);
  loop.run_until_idle();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(loop.events_executed(), 3u);
  EXPECT_GE(loop.stats().overflow_promotions, 1u);
  EXPECT_GE(loop.stats().wheel_cascades, 1u);  // 50 ms spans level 0
}

// --- action type ----------------------------------------------------------

// The whole point of InlineAction: scheduling must work with move-only
// captures (unique_ptr payloads, coroutine handles) without a copyable
// wrapper like std::function forcing shared_ptr workarounds.
static_assert(!std::is_copy_constructible_v<sim::EventLoop::Action>);
static_assert(!std::is_copy_assignable_v<sim::EventLoop::Action>);
static_assert(std::is_nothrow_move_constructible_v<sim::EventLoop::Action>);

TEST(EngineActions, MoveOnlyCaptureSchedulesAndRuns) {
  sim::EventLoop loop;
  auto payload = std::make_unique<int>(42);
  int got = 0;
  loop.schedule_after(0, [payload = std::move(payload), &got] {
    got = *payload;
  });
  const auto inline_before = loop.stats().actions_inline;
  EXPECT_EQ(inline_before, 1u);  // small capture stays in the inline buffer
  loop.run_until_idle();
  EXPECT_EQ(got, 42);
}

TEST(EngineActions, OversizedCaptureSpillsToHeapAndStillRuns) {
  sim::EventLoop loop;
  struct Big {
    char pad[256] = {};
  };
  Big big;
  big.pad[0] = 7;
  int got = 0;
  loop.schedule_after(0, [big, &got] { got = big.pad[0]; });
  EXPECT_EQ(loop.stats().actions_heap, 1u);
  EXPECT_EQ(loop.stats().actions_inline, 0u);
  loop.run_until_idle();
  EXPECT_EQ(got, 7);
}

// --- coroutine-frame recycling --------------------------------------------

sim::Co<int> tiny_child() { co_return 1; }

sim::Co<void> tiny_fiber(int* out) { *out += co_await tiny_child(); }

TEST(EngineFramePool, RepeatedSpawnsRecycleFrames) {
  sim::EventLoop loop;
  int total = 0;
  const auto before = sim::FramePool::instance().stats();
  for (int i = 0; i < 32; ++i) {
    sim::Fiber fiber(tiny_fiber(&total));
    fiber.start();
    loop.run_until_idle();
    EXPECT_TRUE(fiber.done());
  }
  EXPECT_EQ(total, 32);
  const auto after = sim::FramePool::instance().stats();
#if V_FRAME_POOL_ENABLED
  // After the first iteration warms the free lists, every later spawn's
  // frames come back out of the pool: at most one fresh allocation per
  // distinct frame size, everything else recycled.
  EXPECT_GE(after.frames_recycled - before.frames_recycled, 60u);
  EXPECT_LE(after.frames_fresh - before.frames_fresh, 4u);
#else
  // Under ASan the pool disables itself so frame use-after-free stays
  // detectable; every allocation is fresh.
  EXPECT_EQ(after.frames_recycled, before.frames_recycled);
  EXPECT_GE(after.frames_fresh - before.frames_fresh, 64u);
#endif
}

}  // namespace
}  // namespace v::test
