// The stale-binding test matrix for the validated cached open path
// (DESIGN.md 4g, PROTOCOL.md 11):
//
//   - mutation-then-reopen under the schedule fuzzer: a gated mutation
//     between two cached opens must surface as kStaleContext and a correct
//     re-resolution under EVERY explored interleaving, never a wrong answer;
//   - crash of the cached target: the one-hop send dies with kNoReply, the
//     entry is invalidated, and the fallback walk reports the truth;
//   - concurrent invalidation: two worker processes sharing one cache, one
//     of them churning the directory, stay correct and race-free;
//   - the wire-level accounting: a warm hit is exactly ONE message
//     transaction, its trace is a single hop span, the namecache counters
//     are readable through Open("[metrics]namecache/..."), and malformed
//     expected-generation headers are rejected (kBadArgs) by the lint.
//
// Reproduce one failing seed standalone:
//   V_FUZZ_SEED=0x5eed0007 build/tests/test_cached_open
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "msg/csname.hpp"
#include "msg/request_codes.hpp"
#include "naming/protocol.hpp"
#include "servers/metrics_server.hpp"
#include "svc/name_cache.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using svc::NameCache;
using test::VFixture;

constexpr std::uint64_t kSeedBase = 0x5eed0000ULL;

/// Same sweep contract as test_schedule_fuzz: V_FUZZ_SEED pins a single
/// seed (repro mode), V_FUZZ_SEEDS widens/narrows the count (default 16).
std::vector<std::uint64_t> sweep_seeds() {
  if (const char* pin = std::getenv("V_FUZZ_SEED")) {
    return {std::strtoull(pin, nullptr, 0)};
  }
  std::size_t count = 16;
  if (const char* n = std::getenv("V_FUZZ_SEEDS")) {
    count = std::strtoull(n, nullptr, 0);
    if (count == 0) count = 1;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(kSeedBase + i);
  return seeds;
}

std::string repro(std::uint64_t seed, std::string_view scenario) {
  std::ostringstream out;
  out << scenario << " failed under seed 0x" << std::hex << seed
      << "; reproduce with: V_FUZZ_SEED=0x" << seed
      << " tests/test_cached_open";
  return out.str();
}

/// Open `name` through `rt`, assert success and that the bytes match
/// `expect`, and close.  The correctness oracle of the whole matrix: a
/// stale binding may cost a refusal + re-resolution, never wrong bytes.
Co<void> open_expect(svc::Rt& rt, std::string_view name,
                     std::string_view expect) {
  auto opened = co_await rt.open(name, kOpenRead);
  EXPECT_TRUE(opened.ok()) << "open(" << name << ") -> "
                           << to_string(opened.code());
  if (!opened.ok()) co_return;
  svc::File f = opened.take();
  auto bytes = co_await f.read_all();
  EXPECT_TRUE(bytes.ok());
  if (!bytes.ok()) co_return;
  EXPECT_EQ(std::string(
                reinterpret_cast<const char*>(bytes.value().data()),
                bytes.value().size()),
            expect);
  EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
}

// --- the fuzzed mutation matrix --------------------------------------------------

TEST(CachedOpen, FuzzedMutationThenReopenNeverLies) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "mutation-then-reopen"));
    VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
                servers::DiskModel::kMemory, {}, seed);
    fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
      NameCache cache;
      rt.set_cache(&cache);
      // Cold open learns the binding for usr/mann.
      co_await open_expect(rt, "usr/mann/naming.mss",
                           "Distributed name interpretation.");
      EXPECT_EQ(cache.size(), 1u);
      // A gated mutation advances the directory's generation underneath
      // the cached binding.
      EXPECT_EQ(co_await rt.create("usr/mann/fresh.txt"), ReplyCode::kOk);
      // The reopen takes the one-hop path, is REFUSED with kStaleContext,
      // and transparently re-resolves to the correct bytes.
      co_await open_expect(rt, "usr/mann/paper.mss", "ICDCS 1984.");
      EXPECT_EQ(cache.stale(), 1u);
      EXPECT_EQ(cache.fallbacks(), 1u);
      // The fallback re-learned the binding at the new generation: the
      // next open validates cleanly.
      co_await open_expect(rt, "usr/mann/naming.mss",
                           "Distributed name interpretation.");
      EXPECT_EQ(cache.stale(), 1u);
      EXPECT_GE(cache.hits(), 2u);  // the refused hit + the clean hit
      rt.set_cache(nullptr);
    });
  }
}

TEST(CachedOpen, FuzzedCrashedTargetFallsBackDetectably) {
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "crash-then-reopen"));
    VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
                servers::DiskModel::kMemory, {}, seed);
    fx.dom.loop().schedule_at(50 * kMillisecond, [&fx] { fx.fs2.crash(); });
    fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
      NameCache cache;
      rt.set_cache(&cache);
      co_await open_expect(rt, "[beta]pub/readme", "public files live here");
      co_await self.delay(100 * kMillisecond);  // beta dies
      // The one-hop send hits the dead server (kNoReply), the entry is
      // invalidated, and the full walk reports the failure loudly.
      auto reopened = co_await rt.open("[beta]pub/readme", kOpenRead);
      EXPECT_FALSE(reopened.ok());
      EXPECT_EQ(cache.invalidations(), 1u);
      EXPECT_EQ(cache.fallbacks(), 1u);
      EXPECT_EQ(cache.size(), 0u);
      rt.set_cache(nullptr);
    });
  }
}

TEST(CachedOpen, FuzzedConcurrentInvalidationTwoWorkers) {
  // Two worker processes share ONE cache: worker B churns the directory
  // (each create a gated mutation) while worker A re-opens through the
  // shared bindings.  Every stale refusal must fall back to correct bytes;
  // the race detector and lint must stay silent under every interleaving.
  for (const auto seed : sweep_seeds()) {
    SCOPED_TRACE(repro(seed, "two-worker shared cache"));
    VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
                servers::DiskModel::kMemory, {}, seed);
    NameCache shared;
    bool a_done = false;
    bool b_done = false;
    fx.ws1.spawn("worker-a", [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {fx.prefix_pid,
                        {fx.alpha_pid, naming::kDefaultContext}});
      rt.set_cache(&shared);
      for (int i = 0; i < 8; ++i) {
        co_await open_expect(rt, "usr/mann/naming.mss",
                             "Distributed name interpretation.");
        co_await self.delay(kMillisecond);
      }
      rt.set_cache(nullptr);
      a_done = true;
    });
    fx.ws1.spawn("worker-b", [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {fx.prefix_pid,
                        {fx.alpha_pid, naming::kDefaultContext}});
      rt.set_cache(&shared);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(co_await rt.create("usr/mann/b" + std::to_string(i) +
                                     ".txt"),
                  ReplyCode::kOk);
        co_await open_expect(rt, "usr/mann/paper.mss", "ICDCS 1984.");
      }
      rt.set_cache(nullptr);
      b_done = true;
    });
    fx.dom.run();
    fx.check_clean();
    EXPECT_TRUE(a_done) << "worker A parked forever";
    EXPECT_TRUE(b_done) << "worker B parked forever";
    // Every fallback in this scenario is a stale refusal (nothing died),
    // and at least one binding was actually invalidated by the churn.
    EXPECT_EQ(shared.fallbacks(), shared.stale());
    EXPECT_GE(shared.stale(), 1u);
    EXPECT_GE(shared.hits(), 1u);
  }
}

// --- wire-level accounting --------------------------------------------------------

TEST(CachedOpen, WarmHitIsExactlyOneMessageTransaction) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    rt.set_cache(&cache);
    // Cold: full resolution through the prefix server, learns the binding.
    co_await open_expect(rt, "[alpha]usr/mann/naming.mss",
                         "Distributed name interpretation.");
    // Warm: the sibling open must be ONE direct transaction, no forwards.
    const auto before = fx.dom.stats();
    auto warm = co_await rt.open("[alpha]usr/mann/paper.mss", kOpenRead);
    const auto after = fx.dom.stats();
    EXPECT_EQ(after.messages_sent - before.messages_sent, 1u);
    EXPECT_EQ(after.forwards - before.forwards, 0u);
    EXPECT_TRUE(warm.ok());
    if (!warm.ok()) co_return;
    svc::File f = warm.take();
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.stale(), 0u);
    rt.set_cache(nullptr);
  });
}

TEST(CachedOpen, WrongExpectedGenerationAnswersStaleContext) {
  // The wire contract itself (PROTOCOL.md 11): a request quoting a
  // generation the context does not have is answered kStaleContext — a
  // well-formed request (zero lint rejects), refused loudly.
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    const std::string name = "tmp";
    auto req = msg::cs::make_request(
        msg::kQueryName, naming::kDefaultContext,
        static_cast<std::uint16_t>(name.size()));
    msg::cs::set_expected_generation(req, 0xfffffffe);  // never allocated
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    const auto reply = co_await self.send(req, fx.alpha_pid, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kStaleContext);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 0u);
}

#if V_CHECKS_ENABLED

TEST(CachedOpen, UnknownCsFlagBitsRejectedByLint) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    const std::string name = "tmp";
    auto bad = msg::cs::make_request(
        msg::kQueryName, naming::kDefaultContext,
        static_cast<std::uint16_t>(name.size()));
    bad.raw()[msg::cs::kOffCsFlags] = std::byte{0x80};  // undefined bit
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    const auto reply = co_await self.send(bad, fx.alpha_pid, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 1u);
  EXPECT_NE(
      fx.dom.lint().first_dump().find("unknown CSname header flag bits"),
      std::string::npos)
      << fx.dom.lint().first_dump();
}

TEST(CachedOpen, GenerationBytesWithoutFlagRejectedByLint) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process self, svc::Rt /*rt*/) -> Co<void> {
    const std::string name = "tmp";
    auto bad = msg::cs::make_request(
        msg::kQueryName, naming::kDefaultContext,
        static_cast<std::uint16_t>(name.size()));
    bad.set_u32(msg::cs::kOffExpectedGen, 7);  // bytes set, flag clear
    ipc::Segments segs;
    segs.read = std::as_bytes(std::span(name.data(), name.size()));
    const auto reply = co_await self.send(bad, fx.alpha_pid, segs);
    EXPECT_EQ(reply.reply_code(), ReplyCode::kBadArgs);
  });
  EXPECT_EQ(fx.dom.lint().counters().client_rejects, 1u);
  EXPECT_NE(fx.dom.lint().first_dump().find(
                "expected-generation bytes set without the flag"),
            std::string::npos)
      << fx.dom.lint().first_dump();
}

#endif  // V_CHECKS_ENABLED

// --- observability ----------------------------------------------------------------

#if V_TRACE_ENABLED

TEST(CachedOpen, MetricsContextServesNamecacheCounters) {
  VFixture fx;
  servers::MetricsServer metrics_srv;
  const auto metrics_pid = fx.ws1.spawn(
      "metrics", [&](ipc::Process p) { return metrics_srv.run(p); });
  fx.prefixes.define("metrics",
                     {.target = {metrics_pid, naming::kDefaultContext}});
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    rt.set_cache(&cache);
    // One miss, one hit, one stale refusal + fallback.
    co_await open_expect(rt, "usr/mann/naming.mss",
                         "Distributed name interpretation.");
    co_await open_expect(rt, "usr/mann/paper.mss", "ICDCS 1984.");
    EXPECT_EQ(co_await rt.create("usr/mann/churn.txt"), ReplyCode::kOk);
    co_await open_expect(rt, "usr/mann/naming.mss",
                         "Distributed name interpretation.");
    // Freeze the counters (detach the cache), then read them back through
    // the uniform name space, exactly as a remote monitor would.
    rt.set_cache(nullptr);
    const struct {
      const char* name;
      std::uint64_t expect;
    } counters[] = {
        {"[metrics]namecache/hits", cache.hits()},
        {"[metrics]namecache/misses", cache.misses()},
        {"[metrics]namecache/stale", cache.stale()},
        {"[metrics]namecache/fallbacks", cache.fallbacks()},
    };
    for (const auto& c : counters) {
      auto metric = co_await rt.open(c.name, kOpenRead);
      EXPECT_TRUE(metric.ok()) << c.name;
      if (!metric.ok()) continue;
      svc::File f = metric.take();
      auto bytes = co_await f.read_all();
      EXPECT_TRUE(bytes.ok()) << c.name;
      if (!bytes.ok()) continue;
      const std::string text(
          reinterpret_cast<const char*>(bytes.value().data()),
          bytes.value().size());
      EXPECT_EQ(std::strtoull(text.c_str(), nullptr, 10), c.expect)
          << c.name << " read \"" << text << "\"";
      (void)co_await f.close();
    }
    // And the registry snapshot agrees with the wire reads.
    const auto reg = fx.dom.metrics().value_text("namecache", "hits");
    EXPECT_TRUE(reg.has_value());
    if (reg.has_value()) {
      EXPECT_EQ(std::strtoull(reg->c_str(), nullptr, 10), cache.hits());
    }
  });
}

TEST(CachedOpen, WarmHitTraceShowsSingleHop) {
  VFixture fx;
  fx.dom.tracer().enable();
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    NameCache cache;
    rt.set_cache(&cache);
    co_await open_expect(rt, "[alpha]usr/mann/naming.mss",
                         "Distributed name interpretation.");
    co_await open_expect(rt, "[alpha]usr/mann/paper.mss", "ICDCS 1984.");
    EXPECT_EQ(cache.hits(), 1u);
    rt.set_cache(nullptr);
  });

  // Collect the open-request roots in emission order: the cold resolution
  // first, the warm hit last.
  const auto& spans = fx.dom.tracer().spans();
  std::vector<const obs::Span*> roots;
  for (const auto& s : spans) {
    if (s.parent == 0 && s.category == "send" && s.name == "send open") {
      roots.push_back(&s);
    }
  }
  ASSERT_EQ(roots.size(), 2u);
  auto hops = [&](const obs::Span& root) {
    std::vector<const obs::Span*> out;
    for (const auto& s : spans) {
      if (s.trace_id == root.trace_id && s.category == "hop") {
        out.push_back(&s);
      }
    }
    return out;
  };
  // Cold: prefix server + file server — at least two server boundaries.
  EXPECT_GE(hops(*roots.front()).size(), 2u);
  // Warm: the whole resolution is ONE hop span on the final server.
  const auto warm_hops = hops(*roots.back());
  ASSERT_EQ(warm_hops.size(), 1u);
  EXPECT_EQ(warm_hops[0]->parent, roots.back()->id);
}

#endif  // V_TRACE_ENABLED

}  // namespace
}  // namespace v
