// Schedule scenarios shared by the engine-equivalence suite
// (test_engine.cpp) and the golden-order recorder that was run ONCE against
// the pre-timer-wheel std::priority_queue engine.  The recorded firing
// orders are baked into test_engine.cpp; any engine change that perturbs
// tie semantics (FIFO by sequence, seeded-hash permutation under fuzz)
// shows up as a golden mismatch.
//
// Everything here must stay bit-stable: the scenarios use their own
// splitmix64 stream (not sim::Rng) and take no input besides the optional
// fuzz seed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_loop.hpp"

namespace v::test {

/// Private deterministic stream for generating schedules (same finalizer
/// the loop uses for tie keys, different seed domain — overlap is harmless,
/// the scenario only needs stable pseudo-random timestamps).
inline std::uint64_t scenario_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixed schedule: 160 root events packed into 40 distinct timestamps
/// (heavy ties) spread from sub-millisecond to ~200 ms — the span covers
/// several delay scales a real run mixes (hop delays, prefix processing,
/// group timeouts) — plus four far-future stragglers (~2 simulated months,
/// deliberately beyond any realistic timeout) so the whole time range of
/// the scheduler is exercised.  Every third root schedules two children
/// while the queue is live: one at its OWN timestamp (a same-time arrival
/// racing events already due) and one a few milliseconds out.  Exercises:
/// tie ordering among pre-scheduled events, tie ordering against late
/// arrivals, and interleaving of dynamic scheduling with draining.
inline std::vector<int> mixed_schedule_order(
    std::optional<std::uint64_t> fuzz_seed) {
  constexpr sim::SimTime kStride = 5'300'123;  // ~5.3 ms between time buckets
  sim::EventLoop loop;
  if (fuzz_seed) loop.enable_fuzz(*fuzz_seed);
  std::vector<int> order;
  std::uint64_t rng = 0xD1CE'BA5EULL;
  int next_id = 164;  // ids 0..163 are roots; children number upward
  for (int id = 0; id < 160; ++id) {
    const auto at =
        static_cast<sim::SimTime>(scenario_rand(rng) % 40) * kStride;
    loop.schedule_at(at, [&loop, &order, &next_id, &rng, id, at] {
      order.push_back(id);
      if (id % 3 == 0) {
        const int same_time_child = next_id++;
        loop.schedule_at(at, [&order, same_time_child] {
          order.push_back(same_time_child);
        });
        const int later_child = next_id++;
        const auto later =
            at + 1 + static_cast<sim::SimTime>(scenario_rand(rng) % 5) *
                         1'700'459;
        loop.schedule_at(later, [&order, later_child] {
          order.push_back(later_child);
        });
      }
    });
  }
  // Far-future pair of tied pairs: two distinct ~60-day timestamps, two
  // events each.
  constexpr sim::SimTime kFarFuture = 5'000'000'000'000'000;  // ~58 days
  for (int id = 160; id < 164; ++id) {
    loop.schedule_at(kFarFuture + (id < 162 ? 0 : 1'234'567),
                     [&order, id] { order.push_back(id); });
  }
  loop.run_until_idle();
  return order;
}

/// Dense same-timestamp burst: 48 events at one instant, a quarter of which
/// schedule an extra event at that SAME instant while the burst is firing,
/// bracketed by single events one tick before and after.  The sharpest test
/// of the tie rule: under fuzz, a late arrival's hashed tie key may sort
/// BEFORE events that were already pending.
inline std::vector<int> burst_order(std::optional<std::uint64_t> fuzz_seed) {
  constexpr sim::SimTime kBurstAt = 100'000'007;  // ~100 ms, mid-tick
  sim::EventLoop loop;
  if (fuzz_seed) loop.enable_fuzz(*fuzz_seed);
  std::vector<int> order;
  int next_id = 48;
  loop.schedule_at(kBurstAt - 1, [&order] { order.push_back(-1); });
  for (int id = 0; id < 48; ++id) {
    loop.schedule_at(kBurstAt, [&loop, &order, &next_id, id] {
      order.push_back(id);
      if (id % 4 == 0) {
        const int child = next_id++;
        loop.schedule_at(kBurstAt, [&order, child] { order.push_back(child); });
      }
    });
  }
  loop.schedule_at(kBurstAt + 1, [&order] { order.push_back(-2); });
  loop.run_until_idle();
  return order;
}

/// FNV-1a over the firing order — compact golden for the 16-seed matrix.
inline std::uint64_t order_hash(const std::vector<int>& order) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const int v : order) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace v::test
