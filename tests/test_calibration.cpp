// Tests for the cost model itself (CalibrationParams): formula sanity,
// monotonicity, preset fit points, and the invariants every calibration
// must satisfy for the simulation to be meaningful.
#include <gtest/gtest.h>

#include "ipc/calibration.hpp"
#include "sim/time.hpp"

namespace v::ipc {
namespace {

using sim::to_ms;

class CalibrationInvariants
    : public ::testing::TestWithParam<std::pair<const char*,
                                                CalibrationParams>> {};

TEST_P(CalibrationInvariants, AllCostsPositive) {
  const auto& p = GetParam().second;
  EXPECT_GT(p.local_hop, 0);
  EXPECT_GT(p.remote_hop, 0);
  EXPECT_GT(p.per_byte_remote, 0);
  EXPECT_GT(p.disk_page, 0);
  EXPECT_GT(p.packet_bytes, 0u);
  EXPECT_GT(p.group_timeout, 0);
}

TEST_P(CalibrationInvariants, RemoteCostsDominateLocal) {
  const auto& p = GetParam().second;
  EXPECT_GT(p.remote_hop, p.local_hop);
  for (const std::size_t bytes : {64u, 512u, 4096u, 65536u}) {
    EXPECT_GT(p.move_from_cost(bytes, false), p.move_from_cost(bytes, true))
        << bytes;
    EXPECT_GT(p.move_to_cost(bytes, false), p.move_to_cost(bytes, true))
        << bytes;
  }
}

TEST_P(CalibrationInvariants, BulkCostsStrictlyMonotoneInSize) {
  const auto& p = GetParam().second;
  for (const bool local : {true, false}) {
    sim::SimDuration previous = -1;
    for (const std::size_t bytes : {0u, 1u, 100u, 512u, 1024u, 8192u,
                                    65536u, 262144u}) {
      const auto cost = p.move_to_cost(bytes, local);
      EXPECT_GT(cost, previous) << bytes << (local ? " local" : " remote");
      previous = cost;
    }
  }
}

TEST_P(CalibrationInvariants, BulkCostsApproximatelyLinear) {
  // Doubling the payload should at most double-ish the marginal cost:
  // cost(2n) - cost(n) is within 3x of cost(n) - cost(0) for large n.
  const auto& p = GetParam().second;
  const auto c0 = p.move_to_cost(0, false);
  const auto c64 = p.move_to_cost(64 * 1024, false);
  const auto c128 = p.move_to_cost(128 * 1024, false);
  const double first = static_cast<double>(c64 - c0);
  const double second = static_cast<double>(c128 - c64);
  EXPECT_NEAR(second / first, 1.0, 0.05);  // linear beyond the setup cost
}

INSTANTIATE_TEST_SUITE_P(
    Presets, CalibrationInvariants,
    ::testing::Values(
        std::pair{"sun-3mbit", CalibrationParams::SunWorkstation3Mbit()},
        std::pair{"slow-net-fast-cpu",
                  CalibrationParams::SlowNetworkFastCpu()}));

// --- fit points of the SUN preset (DESIGN.md calibration table) --------------

TEST(SunPreset, TransactionFitPoints) {
  const auto p = CalibrationParams::SunWorkstation3Mbit();
  EXPECT_DOUBLE_EQ(to_ms(2 * p.local_hop), 0.77);    // local S-R-R
  EXPECT_DOUBLE_EQ(to_ms(2 * p.remote_hop), 2.56);   // remote S-R-R
}

TEST(SunPreset, ProgramLoadFitPoint) {
  const auto p = CalibrationParams::SunWorkstation3Mbit();
  EXPECT_NEAR(to_ms(p.move_to_cost(64 * 1024, false)), 338.0, 12.0);
}

TEST(SunPreset, SmallNameFetchCosts) {
  // The CSname fetch costs that compose the Open matrix (DESIGN.md):
  // a ~16-byte name is cheap locally, ~0.7 ms remotely.
  const auto p = CalibrationParams::SunWorkstation3Mbit();
  EXPECT_LT(to_ms(p.move_from_cost(16, true)), 0.1);
  EXPECT_NEAR(to_ms(p.move_from_cost(16, false)), 0.72, 0.1);
}

TEST(SunPreset, DiskDominatesPageTransfer) {
  // The E3 shape requires the disk (15 ms) to dominate a 512 B transfer.
  const auto p = CalibrationParams::SunWorkstation3Mbit();
  EXPECT_GT(p.disk_page, p.move_to_cost(512, false));
  EXPECT_EQ(p.disk_page_bytes, 512u);
}

TEST(Hop, SelectsByLocality) {
  const auto p = CalibrationParams::SunWorkstation3Mbit();
  EXPECT_EQ(p.hop(true), p.local_hop);
  EXPECT_EQ(p.hop(false), p.remote_hop);
}

}  // namespace
}  // namespace v::ipc
