// FlatMap edge cases around tombstone erase (added alongside V-lint):
// slot reuse after erase, rehash correctness under mixed insert/erase
// churn, and lookups probing a table at maximum load.  A std::map shadow
// model keeps every churn test honest about the expected contents.
#include <cstdint>
#include <map>
#include <random>

#include <gtest/gtest.h>

#include "common/flat_map.hpp"

namespace v {
namespace {

TEST(FlatMap, EraseRemovesOnlyTheKey) {
  FlatMap<std::uint64_t, int> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2), m.end());
  ASSERT_NE(m.find(1), m.end());
  EXPECT_EQ(m.find(1)->second, 10);
  ASSERT_NE(m.find(3), m.end());
  EXPECT_EQ(m.find(3)->second, 30);
  // Erasing a missing or already-erased key is a no-op.
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.erase(99), 0u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, FindWalksThroughTombstones) {
  // Three keys forced onto one probe chain (same home slot after masking
  // is not guaranteed, so build a chain the hard way: fill, then erase the
  // middle of every adjacent pair and confirm the survivors stay visible).
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 12; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 12; k += 2) EXPECT_EQ(m.erase(k), 1u);
  for (std::uint64_t k = 1; k < 12; k += 2) {
    ASSERT_NE(m.find(k), m.end()) << "key " << k << " lost behind tombstone";
    EXPECT_EQ(m.find(k)->second, static_cast<int>(k));
  }
  for (std::uint64_t k = 0; k < 12; k += 2) {
    EXPECT_EQ(m.find(k), m.end());
  }
}

TEST(FlatMap, InsertReusesTombstones) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 8; ++k) m[k] = static_cast<int>(k);
  // Erase and reinsert the same keys many times over: with tombstone reuse
  // (and compaction on rehash) the table must not grow without bound while
  // the live count stays fixed.
  for (int round = 0; round < 10000; ++round) {
    const std::uint64_t k = static_cast<std::uint64_t>(round % 8);
    EXPECT_EQ(m.erase(k), 1u);
    m[k] = round;
    ASSERT_EQ(m.size(), 8u);
  }
  for (std::uint64_t k = 0; k < 8; ++k) {
    ASSERT_NE(m.find(k), m.end());
  }
}

TEST(FlatMap, MixedChurnMatchesMapModel) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> model;
  std::mt19937_64 rng(0x5eedULL);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng() % 512;  // heavy collisions
    switch (rng() % 3) {
      case 0:
      case 1: {  // insert-or-assign, twice as likely as erase
        const std::uint64_t val = rng();
        m[key] = val;
        model[key] = val;
        break;
      }
      case 2: {
        EXPECT_EQ(m.erase(key), model.erase(key));
        break;
      }
    }
    ASSERT_EQ(m.size(), model.size());
  }
  for (const auto& [key, val] : model) {
    auto* it = m.find(key);
    ASSERT_NE(it, m.end()) << "key " << key << " missing after churn";
    EXPECT_EQ(it->second, val);
  }
  for (std::uint64_t key = 0; key < 512; ++key) {
    if (model.find(key) == model.end()) {
      EXPECT_EQ(m.find(key), m.end()) << "ghost key " << key;
    }
  }
}

TEST(FlatMap, LookupAtMaxLoad) {
  // reserve(n) promises the first n inserts never rehash, which parks the
  // table exactly at its 7/8 load ceiling: every probe chain is as long as
  // it will ever get.  All keys must still be found, and misses must still
  // terminate (an empty slot is guaranteed below capacity).
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kCount = 448;  // 7/8 of a 512-slot table
  m.reserve(kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) m[k * 0x10001ULL] = k;
  ASSERT_EQ(m.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    auto* it = m.find(k * 0x10001ULL);
    ASSERT_NE(it, m.end()) << "key " << k << " lost at max load";
    EXPECT_EQ(it->second, k);
  }
  for (std::uint64_t k = 0; k < kCount; ++k) {
    EXPECT_EQ(m.find(k * 0x10001ULL + 1), m.end());
  }
}

// --- large-N coverage (E14 scale: shard maps, instance tables) -------------

TEST(FlatMapLargeN, GrowthTo100kKeepsEveryEntry) {
  // Sequential keys through many doublings: every rehash must carry every
  // live entry and reserve() must make the pre-sized path rehash-free.
  FlatMap<std::uint64_t, std::uint64_t> m;
  m.reserve(100'000);
  for (std::uint64_t k = 0; k < 100'000; ++k) m[k] = k * 3 + 1;
  ASSERT_EQ(m.size(), 100'000u);
  for (std::uint64_t k = 0; k < 100'000; ++k) {
    auto* it = m.find(k);
    ASSERT_NE(it, m.end()) << "key " << k << " lost during growth";
    EXPECT_EQ(it->second, k * 3 + 1);
  }
  EXPECT_EQ(m.find(100'000), m.end());
}

TEST(FlatMapLargeN, TombstoneCompactionBoundsCapacity) {
  // Steady-state churn at a fixed live size: erase one, insert one, 200k
  // times.  Tombstones must be purged by same-capacity rehashes instead of
  // forcing doublings — the table must NOT grow without bound while the
  // live count stays constant, and every surviving key must stay findable.
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kLive = 4096;
  for (std::uint64_t k = 0; k < kLive; ++k) m[k] = k;
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    const std::uint64_t dead = step;         // oldest live key
    const std::uint64_t born = kLive + step; // new key
    ASSERT_EQ(m.erase(dead), 1u);
    m[born] = born;
    ASSERT_EQ(m.size(), kLive);
  }
  // 4096 live entries fit a 8192-slot table at the 7/16 growth threshold;
  // a tombstone leak would have doubled far past that.
  for (std::uint64_t k = 200'000; k < 200'000 + kLive; ++k) {
    auto* it = m.find(k);
    ASSERT_NE(it, m.end()) << "live key " << k << " lost under churn";
    EXPECT_EQ(it->second, k);
  }
  EXPECT_EQ(m.find(0), m.end());
  EXPECT_EQ(m.find(199'999), m.end());
}

TEST(FlatMapLargeN, RandomChurnMatchesShadowModelAt100k) {
  // 100k-entry random insert/erase/lookup churn against a std::map shadow:
  // the two must agree on size and on every membership question asked.
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> shadow;
  std::mt19937_64 rng(0xE14);
  for (int step = 0; step < 300'000; ++step) {
    const std::uint64_t key = rng() % 150'000;
    switch (rng() % 3) {
      case 0: {
        const std::uint64_t value = rng();
        m[key] = value;
        shadow[key] = value;
        break;
      }
      case 1:
        EXPECT_EQ(m.erase(key), shadow.erase(key));
        break;
      default: {
        auto* it = m.find(key);
        auto sit = shadow.find(key);
        if (sit == shadow.end()) {
          EXPECT_EQ(it, m.end()) << "phantom key " << key;
        } else {
          ASSERT_NE(it, m.end()) << "lost key " << key;
          EXPECT_EQ(it->second, sit->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), shadow.size());
  }
  for (const auto& [key, value] : shadow) {
    auto* it = m.find(key);
    ASSERT_NE(it, m.end()) << "final sweep lost key " << key;
    EXPECT_EQ(it->second, value);
  }
}

TEST(FlatMap, ClearResetsTombstones) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = 1;
  for (std::uint64_t k = 0; k < 64; ++k) m.erase(k);
  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = 2;
  EXPECT_EQ(m.size(), 64u);
  ASSERT_NE(m.find(63), m.end());
  EXPECT_EQ(m.find(63)->second, 2);
}

}  // namespace
}  // namespace v
