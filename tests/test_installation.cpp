// Installation-scale test: the paper's own deployment (section 6) — about
// 30 diskless SUN workstations and 7 VAX/UNIX file servers on one Ethernet,
// each workstation running its own context prefix server (plus terminal and
// team servers).  All workstations run a realistic mixed workload
// concurrently; the test asserts global health, isolation and aggregate
// sanity, at the scale the authors actually operated.
#include <gtest/gtest.h>

#include <memory>

#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "servers/terminal_server.hpp"
#include "servers/time_server.hpp"
#include "svc/runtime.hpp"

namespace v {
namespace {

using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;

constexpr int kWorkstations = 30;
constexpr int kFileServers = 7;

TEST(Installation, ThirtyWorkstationsSevenFileServers) {
  ipc::Domain dom;

  // Seven storage servers, each with per-user home directories.
  std::vector<std::unique_ptr<servers::FileServer>> file_servers;
  std::vector<ipc::ProcessId> fs_pids;
  for (int s = 0; s < kFileServers; ++s) {
    auto& host = dom.add_host("vax" + std::to_string(s));
    file_servers.push_back(std::make_unique<servers::FileServer>(
        "vax" + std::to_string(s), servers::DiskModel::kMemory, s == 0));
    for (int u = 0; u < kWorkstations; ++u) {
      if (u % kFileServers == s) {
        file_servers.back()->put_file(
            "usr/user" + std::to_string(u) + "/profile", "settings");
      }
    }
    file_servers.back()->put_file("bin/edit", std::string(2048, 'E'));
    fs_pids.push_back(host.spawn(
        "vax" + std::to_string(s),
        [srv = file_servers.back().get()](ipc::Process p) {
          return srv->run(p);
        }));
  }

  // Thirty workstations: prefix server + terminal server + a user program.
  std::vector<std::unique_ptr<servers::ContextPrefixServer>> prefix_servers;
  std::vector<std::unique_ptr<servers::TerminalServer>> terminal_servers;
  int finished = 0;
  for (int u = 0; u < kWorkstations; ++u) {
    auto& ws = dom.add_host("sun" + std::to_string(u));
    const int home_fs = u % kFileServers;
    prefix_servers.push_back(std::make_unique<servers::ContextPrefixServer>(
        "user" + std::to_string(u)));
    prefix_servers.back()->define(
        "home", {.target = {fs_pids[static_cast<std::size_t>(home_fs)],
                            file_servers[static_cast<std::size_t>(home_fs)]
                                ->context_of("usr/user" +
                                             std::to_string(u))}});
    prefix_servers.back()->define(
        "bin", {.target = {fs_pids[0],
                           file_servers[0]->context_of("bin")}});
    ws.spawn("prefix" + std::to_string(u),
             [srv = prefix_servers.back().get()](ipc::Process p) {
               return srv->run(p);
             });
    terminal_servers.push_back(std::make_unique<servers::TerminalServer>());
    const auto vt_pid = ws.spawn(
        "vgts" + std::to_string(u),
        [srv = terminal_servers.back().get()](ipc::Process p) {
          return srv->run(p);
        });

    ws.spawn("user" + std::to_string(u), [&, u, vt_pid, home_fs](
                                             ipc::Process self) -> Co<void> {
      auto rt = co_await svc::Rt::attach(
          self,
          {fs_pids[static_cast<std::size_t>(home_fs)],
           naming::kDefaultContext});
      // Stagger start-up like real users.
      co_await self.delay(static_cast<sim::SimDuration>(u) *
                          sim::kMillisecond);
      // 1. Read own profile through [home].
      auto profile = co_await rt.open("[home]profile", kOpenRead);
      EXPECT_TRUE(profile.ok()) << "user " << u;
      if (profile.ok()) {
        svc::File f = profile.take();
        auto bytes = co_await f.read_all();
        EXPECT_TRUE(bytes.ok());
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      // 2. Load a shared program image from the common [bin].
      auto editor = co_await rt.open("[bin]edit", kOpenRead);
      EXPECT_TRUE(editor.ok()) << "user " << u;
      if (editor.ok()) {
        svc::File f = editor.take();
        auto bytes = co_await f.read_bulk();
        EXPECT_TRUE(bytes.ok());
        if (bytes.ok()) {
          EXPECT_EQ(bytes.value().size(), 2048u);
        }
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      // 3. Write a scratch file into the home directory and list it.
      auto scratch =
          co_await rt.open("[home]scratch.txt", kOpenWrite | kOpenCreate);
      EXPECT_TRUE(scratch.ok()) << "user " << u;
      if (scratch.ok()) {
        svc::File f = scratch.take();
        const std::string note = "workstation " + std::to_string(u);
        EXPECT_EQ(co_await f.write_all(std::as_bytes(
                      std::span(note.data(), note.size()))),
                  ReplyCode::kOk);
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      auto listing = co_await rt.list_context("[home]");
      EXPECT_TRUE(listing.ok()) << "user " << u;
      if (listing.ok()) {
        EXPECT_EQ(listing.value().size(), 2u);  // profile + scratch.txt
      }
      // 4. Type into the local virtual terminal.
      rt.set_current({vt_pid, naming::kDefaultContext});
      auto vt = co_await rt.open("console", kOpenWrite | kOpenCreate);
      EXPECT_TRUE(vt.ok()) << "user " << u;
      if (vt.ok()) {
        svc::File f = vt.take();
        const std::string line = "% hello from sun" + std::to_string(u);
        auto wrote = co_await f.write_block(
            0, std::as_bytes(std::span(line.data(), line.size())));
        EXPECT_TRUE(wrote.ok());
        EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
      }
      ++finished;
    });
  }

  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(finished, kWorkstations);
  // Isolation: every user's scratch file landed in exactly their own home.
  for (int u = 0; u < kWorkstations; ++u) {
    const auto& fs = *file_servers[static_cast<std::size_t>(
        u % kFileServers)];
    EXPECT_EQ(fs.read_file("usr/user" + std::to_string(u) +
                           "/scratch.txt").value(),
              "workstation " + std::to_string(u));
  }
  // Aggregate sanity: every terminal got exactly one line.
  for (int u = 0; u < kWorkstations; ++u) {
    EXPECT_EQ(terminal_servers[static_cast<std::size_t>(u)]
                  ->terminal_count(),
              1u);
  }
  // The whole storm stayed in transport bounds (structural counters).
  EXPECT_GT(dom.stats().messages_sent, 400u);
  EXPECT_EQ(dom.stats().forwards,
            static_cast<std::uint64_t>(kWorkstations) * 4u);
}

TEST(Installation, SameInstallationOnAlternateCalibration) {
  // Everything above is timing-calibrated to the SUN preset; the protocol
  // must hold together on a wildly different cost model too.
  ipc::Domain dom(ipc::CalibrationParams::SlowNetworkFastCpu());
  auto& fs_host = dom.add_host("server");
  servers::FileServer fs("fs");
  fs.put_file("shared/readme", "portable across calibrations");
  const auto fs_pid =
      fs_host.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  int finished = 0;
  for (int u = 0; u < 8; ++u) {
    auto& ws = dom.add_host("ws" + std::to_string(u));
    ws.spawn("user" + std::to_string(u),
             [&, fs_pid](ipc::Process self) -> Co<void> {
               svc::Rt rt(self, {ipc::ProcessId::invalid(),
                                 {fs_pid, naming::kDefaultContext}});
               auto opened = co_await rt.open("shared/readme", kOpenRead);
               EXPECT_TRUE(opened.ok());
               if (opened.ok()) {
                 svc::File f = opened.take();
                 EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
               }
               ++finished;
             });
  }
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(finished, 8);
}

}  // namespace
}  // namespace v
