// Satellite S3: queue-cap shedding on EVERY CSNH server.
//
// The kBusy shed policy lives in the CsnhServer receptionist, so it must
// behave identically for all nine concrete servers.  Each instantiation
// floods one server (team: 2 workers, queue cap 2) with six simultaneous
// kMapContextName requests: the receptionist admits two and sheds four with
// an immediate kBusy — and, critically, NOTHING is dropped silently: every
// client gets an answer and the shed counter matches the kBusy replies.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "msg/csname.hpp"
#include "msg/request_codes.hpp"
#include "servers/exception_server.hpp"
#include "servers/file_server.hpp"
#include "servers/internet_server.hpp"
#include "servers/mail_server.hpp"
#include "servers/pipe_server.hpp"
#include "servers/prefix_server.hpp"
#include "servers/printer_server.hpp"
#include "servers/team_server.hpp"
#include "servers/terminal_server.hpp"

namespace v {
namespace {

using sim::Co;

struct ServerCase {
  const char* name;
  std::function<std::unique_ptr<naming::CsnhServer>(naming::TeamConfig)> make;
};

const ServerCase kAllServers[] = {
    {"FileServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::FileServer>(
           "shed", servers::DiskModel::kMemory, false, t);
     }},
    {"ContextPrefixServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::ContextPrefixServer>("mann", false,
                                                             t);
     }},
    {"PipeServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::PipeServer>(64 * 1024, t);
     }},
    {"MailServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::MailServer>(false, t);
     }},
    {"PrinterServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::PrinterServer>(1024, false, t);
     }},
    {"InternetServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::InternetServer>(
           5 * sim::kMillisecond, false, t);
     }},
    {"TerminalServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::TerminalServer>(false, t);
     }},
    {"TeamServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::TeamServer>(naming::ContextPair{},
                                                    false, t);
     }},
    {"ExceptionServer",
     [](naming::TeamConfig t) -> std::unique_ptr<naming::CsnhServer> {
       return std::make_unique<servers::ExceptionServer>(false, t);
     }},
};

class BusyShed : public ::testing::TestWithParam<ServerCase> {};

TEST_P(BusyShed, FloodIsShedWithBusyNeverDroppedSilently) {
  const ServerCase& param = GetParam();
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& ws1 = dom.add_host("ws1");
  auto& srv_host = dom.add_host("srv-host");
  auto server = param.make({.workers = 2, .queue_cap = 2});
  const auto server_pid = srv_host.spawn(
      "srv", [&](ipc::Process p) { return server->run(p); });

  int ok_count = 0;
  int busy_count = 0;
  int other_count = 0;
  for (int c = 0; c < 6; ++c) {
    ws1.spawn("prober", [&](ipc::Process self) -> Co<void> {
      // Empty-name kMapContextName: answered kOk by every conformant CSNH
      // server, read-only (no gate), and needs no segments.
      auto probe = msg::cs::make_request(msg::kMapContextName,
                                         naming::kDefaultContext, 0);
      const auto reply = co_await self.send(probe, server_pid);
      if (reply.reply_code() == ReplyCode::kOk) {
        ++ok_count;
      } else if (reply.reply_code() == ReplyCode::kBusy) {
        ++busy_count;
      } else {
        ++other_count;
      }
    });
  }
  dom.run();

  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  // Every request is answered — kOk or kBusy, never dropped or mangled.
  EXPECT_EQ(other_count, 0);
  EXPECT_EQ(ok_count + busy_count, 6);
  // Six simultaneous arrivals against cap 2: two admitted, four shed, and
  // the server's own accounting agrees with what the clients saw.
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(busy_count, 4);
  EXPECT_EQ(server->shed_count(), 4u);
  EXPECT_EQ(server->queue_depth(), 0u);  // drained by run end
}

INSTANTIATE_TEST_SUITE_P(AllNineServers, BusyShed,
                         ::testing::ValuesIn(kAllServers),
                         [](const ::testing::TestParamInfo<ServerCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace v
