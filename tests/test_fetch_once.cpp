// Fetch-once name forwarding (DESIGN.md §4l): the first server on an
// interpretation chain pays the single host-side name transfer; every
// later hop reads the bytes the Forward carried.  Same-host requests do
// not even copy — the server borrows the blocked sender's segment.
//
// The simulated per-hop MoveFrom DELAY is unchanged either way (that is
// the paper's protocol cost and stays bit-identical); these tests pin the
// host-side transfer counters, which are pure simulator work.
#include <gtest/gtest.h>

#include <string>

#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "svc/runtime.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using test::VFixture;

// A 3-server interpretation chain: alpha -> beta (the fixture's link) ->
// gamma (added here).  The name is longer than NameSpan's 64-byte inline
// capacity, so the one materialized copy exercises the pooled path.
TEST(FetchOnce, ThreeHopChainMovesNameOnce) {
  VFixture fx;
  auto& fs3 = fx.dom.add_host("fs3");
  servers::FileServer gamma("gamma", servers::DiskModel::kMemory,
                            /*register_service=*/false);
  const std::string leaf = "pkg-" + std::string(72, 'x');
  gamma.put_file("depot/" + leaf, "three hops deep");
  const auto gamma_pid =
      fs3.spawn("gamma-fs", [&gamma](ipc::Process p) { return gamma.run(p); });
  fx.beta.put_link("pub/hop3", {gamma_pid, gamma.context_of("depot")});

  const std::string name = "usr/mann/proj/hop3/" + leaf;
  ASSERT_GT(name.size(), 64u);  // pooled, not inline

  const auto before = fx.dom.stats();
  fx.run_client([&name](ipc::Process, svc::Rt rt) -> Co<void> {
    auto opened = co_await rt.open(name, kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
  const auto& after = fx.dom.stats();
  EXPECT_EQ(after.forwards - before.forwards, 2u);  // alpha->beta->gamma
  // One transfer total: alpha (remote from the ws1 client) copies the name
  // bytes once; beta and gamma read the forwarded attachment.
  EXPECT_EQ(after.moves - before.moves, 1u);
  EXPECT_EQ(after.bytes_moved - before.bytes_moved, name.size());
}

// A client on the SERVER's host: the name bytes are borrowed straight out
// of the sender's exposed read segment — no transfer counted at all.
TEST(FetchOnce, SameHostOpenBorrowsNameZeroCopy) {
  VFixture fx;
  const auto before = fx.dom.stats();
  bool finished = false;
  fx.fs1.spawn("local-client", [&fx, &finished](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, naming::ContextPair{fx.alpha_pid, naming::kDefaultContext});
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
    finished = true;
  });
  fx.dom.run();
  fx.check_clean();
  ASSERT_TRUE(finished) << "client parked forever";
  const auto& after = fx.dom.stats();
  EXPECT_EQ(after.moves - before.moves, 0u);
  EXPECT_EQ(after.bytes_moved - before.bytes_moved, 0u);
}

}  // namespace
}  // namespace v
