// Property-based tests: random operation sequences against a FileServer
// through the full protocol stack, checked against an in-test model.
//
// Invariants exercised per random seed:
//  * a created file is openable and reads back exactly what was written;
//  * a removed name stops resolving, and removal never affects siblings;
//  * context directories agree with the model's view of every directory;
//  * MapContextName succeeds exactly for model directories;
//  * operations never crash any process and the simulation always drains.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>

#include "naming/protocol.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::DescriptorType;
using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using test::VFixture;

struct Model {
  std::set<std::string> dirs{""};              // "" is the root
  std::map<std::string, std::string> files;    // path -> content

  static std::string parent(const std::string& path) {
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? std::string{} : path.substr(0, slash);
  }
  static std::string leaf_of(const std::string& path) {
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }
  [[nodiscard]] bool dir_has_children(const std::string& dir) const {
    for (const auto& d : dirs) {
      if (d != dir && parent(d) == dir && !d.empty()) return true;
    }
    for (const auto& [f, _] : files) {
      if (parent(f) == dir) return true;
    }
    return false;
  }
};

class RandomOps : public ::testing::TestWithParam<int> {};

TEST_P(RandomOps, ProtocolAgreesWithModel) {
  VFixture fx;
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  Model model;

  const std::vector<std::string> name_pool = {"a", "b", "c", "dir1", "dir2",
                                              "f.txt", "g.dat"};
  auto random_name = [&] { return name_pool[rng() % name_pool.size()]; };
  auto random_dir = [&] {
    auto it = model.dirs.begin();
    std::advance(it, rng() % model.dirs.size());
    return *it;
  };
  auto join = [](const std::string& dir, const std::string& leaf) {
    return dir.empty() ? leaf : dir + "/" + leaf;
  };

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    // Work in a scratch area so the fixture content stays out of the model.
    EXPECT_EQ(co_await rt.make_context("scratch"), ReplyCode::kOk);
    EXPECT_EQ(co_await rt.change_context("scratch"), ReplyCode::kOk);

    for (int step = 0; step < 120; ++step) {
      const int op = static_cast<int>(rng() % 5);
      const std::string dir = random_dir();
      const std::string leaf = random_name();
      const std::string path = join(dir, leaf);
      const bool is_dir = model.dirs.contains(path);
      const bool is_file = model.files.contains(path);
      switch (op) {
        case 0: {  // mkdir
          const auto got = co_await rt.make_context(path);
          EXPECT_EQ(got, (is_dir || is_file) ? ReplyCode::kNameExists
                                             : ReplyCode::kOk)
              << "mkdir " << path;
          if (v::ok(got)) model.dirs.insert(path);
          break;
        }
        case 1: {  // create + write
          std::string content(rng() % 700, '\0');
          for (auto& c : content) c = static_cast<char>('a' + rng() % 26);
          auto opened = co_await rt.open(
              path, kOpenRead | kOpenWrite | kOpenCreate);
          if (is_dir) {
            // Opening a name that resolves to a context opens its context
            // DIRECTORY (section 5.6), not a file.
            EXPECT_TRUE(opened.ok()) << path;
            if (opened.ok()) {
              svc::File d = opened.take();
              EXPECT_EQ(co_await d.close(), ReplyCode::kOk);
            }
            break;
          }
          EXPECT_TRUE(opened.ok()) << path;
          if (!opened.ok()) break;
          svc::File f = opened.take();
          EXPECT_EQ(co_await f.write_all(std::as_bytes(
                        std::span(content.data(), content.size()))),
                    ReplyCode::kOk);
          EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
          // Writes at block granularity only extend; model the result.
          auto& stored = model.files[path];
          if (content.size() >= stored.size()) {
            stored = content;
          } else {
            stored.replace(0, content.size(), content);
          }
          break;
        }
        case 2: {  // remove
          const auto got = co_await rt.remove(path);
          if (is_file) {
            EXPECT_EQ(got, ReplyCode::kOk) << path;
            model.files.erase(path);
          } else if (is_dir) {
            const bool busy = model.dir_has_children(path);
            EXPECT_EQ(got, busy ? ReplyCode::kBadState : ReplyCode::kOk)
                << path;
            if (!busy) model.dirs.erase(path);
          } else {
            EXPECT_EQ(got, ReplyCode::kNotFound) << path;
          }
          break;
        }
        case 3: {  // query
          auto desc = co_await rt.query(path);
          if (is_file) {
            EXPECT_TRUE(desc.ok()) << path;
            if (desc.ok()) {
              EXPECT_EQ(desc.value().type, DescriptorType::kFile);
              EXPECT_EQ(desc.value().size, model.files[path].size());
            }
          } else if (is_dir) {
            EXPECT_TRUE(desc.ok()) << path;
            if (desc.ok()) {
              EXPECT_EQ(desc.value().type, DescriptorType::kContext);
            }
          } else {
            EXPECT_EQ(desc.code(), ReplyCode::kNotFound) << path;
          }
          break;
        }
        case 4: {  // map context
          auto mapped = co_await rt.map_context(path);
          if (is_dir) {
            EXPECT_TRUE(mapped.ok()) << path;
          } else if (is_file) {
            EXPECT_EQ(mapped.code(), ReplyCode::kNotAContext) << path;
          } else {
            EXPECT_EQ(mapped.code(), ReplyCode::kNotFound) << path;
          }
          break;
        }
        default:
          break;
      }
    }

    // Final audit: every model directory's context directory matches, and
    // every model file reads back its content.
    for (const auto& dir : model.dirs) {
      auto records = co_await rt.list_context(dir);
      EXPECT_TRUE(records.ok()) << dir;
      if (!records.ok()) continue;
      std::set<std::string> listed;
      for (const auto& rec : records.value()) {
        listed.insert(join(dir, rec.name));
      }
      std::set<std::string> expected;
      for (const auto& d : model.dirs) {
        if (!d.empty() && Model::parent(d) == dir) expected.insert(d);
      }
      for (const auto& [f, _] : model.files) {
        if (Model::parent(f) == dir) expected.insert(f);
      }
      EXPECT_EQ(listed, expected) << "directory " << dir;
    }
    for (const auto& [path, content] : model.files) {
      auto opened = co_await rt.open(path, kOpenRead);
      EXPECT_TRUE(opened.ok()) << path;
      if (!opened.ok()) continue;
      svc::File f = opened.take();
      auto bytes = co_await f.read_all();
      EXPECT_TRUE(bytes.ok()) << path;
      if (bytes.ok()) {
        EXPECT_EQ(std::string(
                      reinterpret_cast<const char*>(bytes.value().data()),
                      bytes.value().size()),
                  content)
            << path;
      }
      EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOps, ::testing::Range(0, 10));

// Random prefix-table churn: add/delete/redefine prefixes and verify the
// table contents via the context directory after every batch.
class RandomPrefixOps : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrefixOps, TableMatchesDirectoryListing) {
  VFixture fx;
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
  std::map<std::string, bool> model;  // prefix -> points-at-beta
  const std::vector<std::string> pool = {"p0", "p1", "p2", "p3", "p4"};

  fx.run_client([&](ipc::Process, svc::Rt rt) -> Co<void> {
    for (int step = 0; step < 60; ++step) {
      const auto& name = pool[rng() % pool.size()];
      if (rng() % 3 == 0) {
        const auto got = co_await rt.delete_prefix(name);
        EXPECT_EQ(got, model.contains(name) ? ReplyCode::kOk
                                            : ReplyCode::kNotFound)
            << name;
        model.erase(name);
      } else {
        const bool to_beta = rng() % 2 == 0;
        const naming::ContextPair target =
            to_beta ? naming::ContextPair{fx.beta_pid,
                                          naming::kDefaultContext}
                    : naming::ContextPair{fx.alpha_pid,
                                          naming::kDefaultContext};
        EXPECT_EQ(co_await rt.add_prefix(name, target), ReplyCode::kOk);
        model[name] = to_beta;
      }
    }
    // Audit against the prefix server's own context directory.
    rt.set_current({fx.prefix_pid, naming::kDefaultContext});
    auto records = co_await rt.list_context("");
    EXPECT_TRUE(records.ok());
    if (!records.ok()) co_return;
    std::map<std::string, std::uint32_t> listed;
    for (const auto& rec : records.value()) {
      listed[rec.name] = rec.server_pid;
    }
    // The fixture's five standard prefixes are also present.
    EXPECT_EQ(listed.size(), model.size() + 5);
    for (const auto& [name, to_beta] : model) {
      EXPECT_TRUE(listed.contains(name)) << name;
      if (!listed.contains(name)) continue;
      EXPECT_EQ(listed[name],
                to_beta ? fx.beta_pid.raw : fx.alpha_pid.raw)
          << name;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrefixOps, ::testing::Range(0, 6));

}  // namespace
}  // namespace v
