// Tests for the byte-stream client layer over the V I/O protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "naming/protocol.hpp"
#include "servers/mail_server.hpp"
#include "svc/stream.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using test::VFixture;

sim::Co<Result<svc::Stream>> open_stream(svc::Rt& rt, std::string_view name,
                                         std::uint16_t mode) {
  auto opened = co_await rt.open(name, mode);
  if (!opened.ok()) co_return opened.code();
  co_return svc::Stream(opened.take());
}

TEST(Stream, ReadLineSplitsOnNewlines) {
  VFixture fx;
  fx.alpha.put_file("doc/lines.txt", "first\nsecond\nthird");
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto stream = co_await open_stream(rt, "doc/lines.txt", kOpenRead);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) co_return;
    svc::Stream s = stream.take();
    auto line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "first");
    }
    line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "second");
    }
    line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "third");  // unterminated final line
    }
    line = co_await s.read_line();
    EXPECT_EQ(line.code(), ReplyCode::kEndOfFile);
    EXPECT_TRUE(s.eof());
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
  });
}

TEST(Stream, LinesSpanningBlockBoundaries) {
  VFixture fx;
  // One line of 700 chars crosses the 512-byte block boundary.
  std::string content(700, 'A');
  content += "\nshort";
  fx.alpha.put_file("doc/long.txt", content);
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto stream = co_await open_stream(rt, "doc/long.txt", kOpenRead);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) co_return;
    svc::Stream s = stream.take();
    auto line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value().size(), 700u);
    }
    line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "short");
    }
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
  });
}

TEST(Stream, ByteReadsAndSeek) {
  VFixture fx;
  std::string content(1300, '\0');
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>('a' + i % 26);
  }
  fx.alpha.put_file("doc/bytes.bin", content);
  fx.run_client([&content](ipc::Process, svc::Rt rt) -> Co<void> {
    auto stream = co_await open_stream(rt, "doc/bytes.bin", kOpenRead);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) co_return;
    svc::Stream s = stream.take();
    std::array<std::byte, 200> chunk{};
    auto got = co_await s.read(chunk);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value(), 200u);
      EXPECT_EQ(std::memcmp(chunk.data(), content.data(), 200), 0);
    }
    // Seek past a block boundary and read across it.
    s.seek(500);
    got = co_await s.read(chunk);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value(), 200u);
      EXPECT_EQ(std::memcmp(chunk.data(), content.data() + 500, 200), 0);
    }
    // Read the tail; the final read is short.
    auto rest = co_await s.read_rest();
    EXPECT_TRUE(rest.ok());
    if (rest.ok()) {
      EXPECT_EQ(rest.value(), content.substr(700));
      EXPECT_TRUE(s.eof());
    }
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
  });
}

TEST(Stream, AppendExtendsAcrossBlocks) {
  VFixture fx;
  fx.run_client([&fx](ipc::Process, svc::Rt rt) -> Co<void> {
    auto stream = co_await open_stream(
        rt, "tmp/log.txt", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) co_return;
    svc::Stream s = stream.take();
    for (int i = 0; i < 40; ++i) {
      const std::string line =
          "entry " + std::to_string(i) + std::string(20, '.') + "\n";
      EXPECT_EQ(co_await s.append(line), ReplyCode::kOk);
    }
    // Read the whole log back line by line.
    s.seek(0);
    int lines = 0;
    for (;;) {
      auto line = co_await s.read_line();
      if (!line.ok()) break;
      EXPECT_TRUE(line.value().starts_with("entry "));
      ++lines;
    }
    EXPECT_EQ(lines, 40);
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
    // The server sees the identical content.
    auto raw = fx.alpha.read_file("tmp/log.txt");
    EXPECT_TRUE(raw.ok());
    EXPECT_EQ(std::count(raw.value().begin(), raw.value().end(), '\n'), 40);
  });
}

TEST(Stream, EmptyFileBehaves) {
  VFixture fx;
  fx.alpha.put_file("doc/empty", "");
  fx.run_client([](ipc::Process, svc::Rt rt) -> Co<void> {
    auto stream = co_await open_stream(rt, "doc/empty", kOpenRead);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) co_return;
    svc::Stream s = stream.take();
    std::array<std::byte, 16> chunk{};
    auto got = co_await s.read(chunk);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got.value(), 0u);
    }
    auto line = co_await s.read_line();
    EXPECT_EQ(line.code(), ReplyCode::kEndOfFile);
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
  });
}

TEST(Stream, MailboxReadsAsStream) {
  // The uniformity payoff: the same Stream works over a mailbox instance.
  VFixture fx;
  servers::MailServer mail;
  const auto mail_pid =
      fx.fs2.spawn("mail", [&mail](ipc::Process p) { return mail.run(p); });
  fx.run_client([mail_pid](ipc::Process, svc::Rt rt) -> Co<void> {
    rt.set_current({mail_pid, naming::kDefaultContext});
    auto opened = co_await rt.open(
        "mann@su-navajo", kOpenRead | kOpenWrite | kOpenCreate);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::Stream s(opened.take());
    auto wrote1 = co_await s.file().write_block(
        0, std::as_bytes(std::span("msg one", 7)));
    EXPECT_TRUE(wrote1.ok());
    auto wrote2 = co_await s.file().write_block(
        0, std::as_bytes(std::span("msg two", 7)));
    EXPECT_TRUE(wrote2.ok());
    s.seek(0);
    auto line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "msg one");
    }
    line = co_await s.read_line();
    EXPECT_TRUE(line.ok());
    if (line.ok()) {
      EXPECT_EQ(line.value(), "msg two");
    }
    EXPECT_EQ(co_await s.close(), ReplyCode::kOk);
  });
}

}  // namespace
}  // namespace v
