// Tests for the receptionist + worker-team CSNH server structure:
// head-of-line blocking elimination, queue-cap shedding (kBusy),
// deterministic serialization of mutating ops on the same (ctx, leaf),
// and the deferred-reply / group-forward paths with workers > 1.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "naming/protocol.hpp"
#include "servers/pipe_server.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenCreate;
using naming::wire::kOpenRead;
using naming::wire::kOpenWrite;
using sim::Co;
using sim::kMillisecond;
using test::VFixture;

// --- head-of-line blocking ------------------------------------------------

// Open latency of an independent small file while a bulk disk transfer
// (ONE request, ~8 disk pages at 15 ms each) is in flight at the same
// server.
sim::SimDuration open_latency_during_bulk(std::size_t workers) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kDisk,
              {.workers = workers, .queue_cap = 64});
  fx.ws1.spawn("streamer", [&fx](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.alpha_pid, naming::kDefaultContext}});
    auto opened = co_await rt.open("bin/edit", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    auto bytes = co_await f.read_bulk();
    EXPECT_TRUE(bytes.ok());
    (void)co_await f.close();
  });
  sim::SimDuration latency = 0;
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    // Give the streamer time to get its bulk read in flight.
    co_await self.delay(20 * kMillisecond);
    const auto t0 = self.now();
    auto opened = co_await rt.open("usr/mann/naming.mss", kOpenRead);
    latency = self.now() - t0;
    EXPECT_TRUE(opened.ok());
    if (opened.ok()) {
      svc::File f = opened.take();
      (void)co_await f.close();
    }
  });
  return latency;
}

TEST(ServerTeam, SerialLoopSuffersHeadOfLineBlocking) {
  // Baseline sanity for the regression below: with the classic serial
  // loop the independent open waits for the whole remaining transfer.
  EXPECT_GT(open_latency_during_bulk(1), 50 * kMillisecond);
}

TEST(ServerTeam, SecondWorkerEliminatesHeadOfLineBlocking) {
  // With one extra worker the open must not be delayed past (roughly)
  // its own service time — far below the bulk transfer's duration.
  EXPECT_LT(open_latency_during_bulk(2), 20 * kMillisecond);
}

// --- queue cap + shed policy ----------------------------------------------

TEST(ServerTeam, QueueCapShedsWithBusyReply) {
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer disk_fs("disk", servers::DiskModel::kDisk,
                              /*register_service=*/false,
                              {.workers = 2, .queue_cap = 2});
  disk_fs.put_file("big.dat", std::string(8 * 1024, 'x'));
  disk_fs.put_file("small.dat", "tiny");
  const auto disk_pid =
      fs1.spawn("disk-fs", [&](ipc::Process p) { return disk_fs.run(p); });

  // Two streamers occupy both workers with long bulk transfers.
  for (int s = 0; s < 2; ++s) {
    ws1.spawn("streamer", [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {disk_pid, naming::kDefaultContext}});
      auto opened = co_await rt.open("big.dat", kOpenRead);
      EXPECT_TRUE(opened.ok());
      if (!opened.ok()) co_return;
      svc::File f = opened.take();
      (void)co_await f.read_bulk();
      (void)co_await f.close();
    });
  }
  // Four opens arrive while both workers are busy: queue_cap = 2 admits
  // two; the other two must be shed immediately with kBusy.
  int ok_count = 0;
  int busy_count = 0;
  for (int c = 0; c < 4; ++c) {
    ws1.spawn("opener", [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {disk_pid, naming::kDefaultContext}});
      co_await self.delay(30 * kMillisecond);
      auto opened = co_await rt.open("small.dat", kOpenRead);
      if (opened.ok()) {
        ++ok_count;
        svc::File f = opened.take();
        (void)co_await f.close();
      } else if (opened.code() == ReplyCode::kBusy) {
        ++busy_count;
      }
    });
  }
  dom.run();
  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(busy_count, 2);
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(disk_fs.shed_count(), 2u);
  EXPECT_EQ(disk_fs.queue_depth(), 0u);  // drained by run end
}

// --- mutating-op serialization --------------------------------------------

// Four clients race create/remove on the SAME (ctx, leaf) against a
// 4-worker team.  The per-name gate serializes the mutations, and the
// deterministic event loop makes the interleaving reproducible: the whole
// journal of observed reply codes must be identical across runs.
std::vector<std::string> mutate_race_journal() {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {.workers = 4, .queue_cap = 64});
  std::vector<std::string> journal(4);
  int finished = 0;
  for (int c = 0; c < 4; ++c) {
    fx.ws1.spawn("mutator", [&fx, &journal, &finished,
                             c](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {fx.alpha_pid, naming::kDefaultContext}});
      for (int i = 0; i < 5; ++i) {
        const auto created = co_await rt.create("tmp/contested", 0);
        journal[static_cast<std::size_t>(c)] +=
            std::string(to_string(created)) + ";";
        co_await self.delay((c + 1) * kMillisecond);
        const auto removed = co_await rt.remove("tmp/contested");
        journal[static_cast<std::size_t>(c)] +=
            std::string(to_string(removed)) + ";";
      }
      ++finished;
    });
  }
  fx.dom.run();
  EXPECT_EQ(fx.dom.process_failures(), 0u) << fx.dom.first_failure();
  EXPECT_EQ(finished, 4);
  return journal;
}

TEST(ServerTeam, MutatingOpsOnSameLeafAreDeterministic) {
  const auto first = mutate_race_journal();
  const auto second = mutate_race_journal();
  EXPECT_EQ(first, second);
  // The gate admits one mutation at a time, so every observed code is a
  // legal serial outcome — never a torn/corrupt server state.
  for (const auto& log : first) {
    EXPECT_EQ(log.find("BAD_STATE"), std::string::npos) << log;
    EXPECT_NE(log.find("OK"), std::string::npos) << log;
  }
}

// --- pipe deferred replies with a team ------------------------------------

TEST(ServerTeam, PipeDeferredReplyWorksWithWorkers) {
  VFixture fx;
  servers::PipeServer pipes_srv(64 * 1024, {.workers = 3, .queue_cap = 32});
  const auto pipe_pid = fx.ws1.spawn(
      "pipe-server", [&](ipc::Process p) { return pipes_srv.run(p); });

  sim::SimTime side_done_at = 0;
  sim::SimTime read_returned_at = 0;

  // Producer: writes after 50 ms, so the consumer's read must block via
  // the deferred-reply path (held envelope) in the meantime.
  auto& ws2 = fx.dom.add_host("ws2");
  ws2.spawn("producer", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {pipe_pid, naming::kDefaultContext}});
    co_await self.delay(50 * kMillisecond);
    auto w = co_await rt.open("blocky", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    const std::string payload = "finally";
    auto wrote = co_await writer.write_block(
        0, std::as_bytes(std::span(payload.data(), payload.size())));
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
  });
  // Side client: while the consumer's read is parked, other requests are
  // still served promptly — the held envelope must not stall the team.
  ws2.spawn("side", [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {pipe_pid, naming::kDefaultContext}});
    co_await self.delay(20 * kMillisecond);
    auto w = co_await rt.open("other", kOpenWrite | kOpenCreate);
    EXPECT_TRUE(w.ok());
    if (!w.ok()) co_return;
    svc::File writer = w.take();
    EXPECT_EQ(co_await writer.close(), ReplyCode::kOk);
    side_done_at = self.now();
  });
  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    rt.set_current({pipe_pid, naming::kDefaultContext});
    auto r = co_await rt.open("blocky", kOpenRead | kOpenCreate);
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    svc::File reader = r.take();
    std::vector<std::byte> buf(32);
    auto got = co_await reader.read_block(0, buf);  // parks ~50 ms
    read_returned_at = self.now();
    EXPECT_TRUE(got.ok());
    if (!got.ok()) co_return;
    EXPECT_EQ(got.value(), 7u);
    EXPECT_EQ(std::memcmp(buf.data(), "finally", 7), 0);
    EXPECT_EQ(co_await reader.close(), ReplyCode::kOk);
  });
  EXPECT_GE(read_returned_at, 50 * kMillisecond);
  EXPECT_GT(side_done_at, sim::SimTime{0});
  EXPECT_LT(side_done_at, 40 * kMillisecond);  // not stuck behind the park
}

// --- group-forward path with a team ---------------------------------------

TEST(ServerTeam, GroupImplementedContextWorksWithWorkers) {
  constexpr ipc::GroupId kReplicas = 0x9002;
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, {.workers = 2, .queue_cap = 32});
  std::vector<std::unique_ptr<servers::FileServer>> replicas;
  for (int i = 0; i < 3; ++i) {
    auto& host = fx.dom.add_host("replica-host" + std::to_string(i));
    replicas.push_back(std::make_unique<servers::FileServer>(
        "replica" + std::to_string(i), servers::DiskModel::kMemory,
        /*register_service=*/false,
        naming::TeamConfig{.workers = 2, .queue_cap = 32}));
    replicas.back()->put_file("shared/doc.txt", "replicated content");
    replicas.back()->set_group(kReplicas);
    host.spawn("replica" + std::to_string(i),
               [srv = replicas.back().get()](ipc::Process p) {
                 return srv->run(p);
               });
  }
  servers::ContextPrefixServer::Entry entry;
  entry.group = kReplicas;
  fx.prefixes.define("repl", entry);

  fx.run_client([](ipc::Process self, svc::Rt rt) -> Co<void> {
    co_await self.delay(kMillisecond);  // members join their group
    auto opened = co_await rt.open("[repl]shared/doc.txt", kOpenRead);
    EXPECT_TRUE(opened.ok());
    if (!opened.ok()) co_return;
    svc::File f = opened.take();
    auto bytes = co_await f.read_all();
    EXPECT_TRUE(bytes.ok());
    if (!bytes.ok()) co_return;
    EXPECT_EQ(std::string(
                  reinterpret_cast<const char*>(bytes.value().data()),
                  bytes.value().size()),
              "replicated content");
    EXPECT_EQ(co_await f.close(), ReplyCode::kOk);
  });
}

}  // namespace
}  // namespace v
