// The V-fault chaos matrix (DESIGN.md 4h): loss rate x crash schedule x
// seed.  Every cell runs the standard VFixture installation under a
// seed-driven FaultPlan while a client works through a fixed naming
// workload with full recovery enabled (kernel retransmission underneath,
// Rt retries + multicast rebinding + validated cache on top).
//
// The oracle is the same as the cached-open matrix, hardened for chaos:
// an open may cost retries and may fail CLEANLY while its server is down,
// but it must never return wrong bytes and the client must never park
// forever.  Where the scenario guarantees an eventual server (no crash, or
// crash followed by restart), the open must eventually succeed, and for
// the crash+restart schedule the time from restart to the first successful
// open is the recovery latency — asserted bounded and reported by
// bench_fault_recovery.
//
// Reproduce one failing cell standalone:
//   V_FUZZ_SEED=0xFA070003 build/tests/test_fault_matrix
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"
#include "v_fixture.hpp"

namespace v {
namespace {

using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using sim::kSecond;
using test::kStorageGroup;
using test::VFixture;

#if V_FAULT_ENABLED

constexpr std::uint64_t kSeedBase = 0xFA070000ULL;

/// Same sweep contract as the other matrices: V_FUZZ_SEED pins a single
/// seed (repro mode), V_FUZZ_SEEDS widens/narrows the count (default 16).
std::vector<std::uint64_t> sweep_seeds() {
  if (const char* pin = std::getenv("V_FUZZ_SEED")) {
    return {std::strtoull(pin, nullptr, 0)};
  }
  std::size_t count = 16;
  if (const char* n = std::getenv("V_FUZZ_SEEDS")) {
    count = std::strtoull(n, nullptr, 0);
    if (count == 0) count = 1;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(kSeedBase + i);
  return seeds;
}

enum class Schedule { kNone, kCrashBeta, kCrashRestartAlpha };

const char* to_label(Schedule s) {
  switch (s) {
    case Schedule::kNone: return "none";
    case Schedule::kCrashBeta: return "crash-beta";
    case Schedule::kCrashRestartAlpha: return "crash+restart-alpha";
  }
  return "?";
}

std::string cell(double loss, Schedule schedule, std::uint64_t seed) {
  std::ostringstream out;
  out << "cell loss=" << loss << " schedule=" << to_label(schedule)
      << " seed=0x" << std::hex << seed
      << "; reproduce with: V_FUZZ_SEED=0x" << seed
      << " tests/test_fault_matrix";
  return out.str();
}

/// Open `name` up to `attempts` times, `gap` apart.  A success must carry
/// exactly `expect` — wrong bytes fail the test on the spot.  Clean errors
/// are tolerated (the scenario may have the server down); returns whether
/// the open eventually succeeded so callers can assert availability where
/// the scenario guarantees it.
Co<bool> open_eventually(ipc::Process self, svc::Rt& rt,
                         std::string_view name, std::string_view expect,
                         int attempts, sim::SimDuration gap) {
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) co_await self.delay(gap);
    auto opened = co_await rt.open(name, kOpenRead);
    if (!opened.ok()) continue;  // clean failure: retry after the gap
    svc::File f = opened.take();
    auto bytes = co_await f.read_all();
    if (!bytes.ok()) {
      (void)co_await f.close();
      continue;
    }
    EXPECT_EQ(std::string(
                  reinterpret_cast<const char*>(bytes.value().data()),
                  bytes.value().size()),
              expect)
        << "open(" << name << ") returned WRONG BYTES";
    (void)co_await f.close();
    co_return true;
  }
  co_return false;
}

struct WorkItem {
  std::string_view name;
  std::string_view expect;
  bool on_beta;  ///< served by (or through) beta
};

constexpr WorkItem kWorkload[] = {
    {"usr/mann/naming.mss", "Distributed name interpretation.", false},
    {"usr/mann/paper.mss", "ICDCS 1984.", false},
    {"[home]paper.mss", "ICDCS 1984.", false},
    {"[alpha]usr/mann/naming.mss", "Distributed name interpretation.", false},
    {"[beta]pub/readme", "public files live here", true},
    {"[beta]pub/data/points.dat", "1 2 3 4 5", true},
    {"usr/mann/proj/readme", "public files live here", true},
    {"usr/mann/proj/data/points.dat", "1 2 3 4 5", true},
};

TEST(FaultMatrix, ChaosSweepNeverLiesAndRecoversBounded) {
  constexpr double kLossRates[] = {0.0, 0.01, 0.05, 0.20};
  constexpr Schedule kSchedules[] = {Schedule::kNone, Schedule::kCrashBeta,
                                     Schedule::kCrashRestartAlpha};
  constexpr sim::SimTime kCrashAt = 40 * kMillisecond;
  constexpr sim::SimTime kRestartAt = 90 * kMillisecond;

  for (const double loss : kLossRates) {
    for (const Schedule schedule : kSchedules) {
      for (const auto seed : sweep_seeds()) {
        SCOPED_TRACE(cell(loss, schedule, seed));
        VFixture fx;
        fault::FaultPlan plan(seed);
        fault::LinkFaults link;
        link.drop = loss;
        link.duplicate = loss / 2;
        link.reorder = loss / 2;
        plan.set_default_link(link);
        switch (schedule) {
          case Schedule::kNone:
            break;
          case Schedule::kCrashBeta:
            plan.crash_at(kCrashAt, fx.fs2.id());
            break;
          case Schedule::kCrashRestartAlpha:
            plan.crash_at(kCrashAt, fx.fs1.id());
            plan.restart_at(kRestartAt, fx.fs1.id(),
                            [&fx] { fx.respawn_alpha(); });
            break;
        }
        fx.dom.install_faults(plan);

        fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
          svc::NameCache cache;
          rt.set_cache(&cache);
          svc::RecoveryPolicy policy;
          policy.noreply_retries = 1;
          policy.rebind_group = kStorageGroup;
          rt.set_recovery(policy);

          for (const auto& item : kWorkload) {
            // Availability: beta never comes back in kCrashBeta, so its
            // names are only required not to lie; everything else must
            // eventually be served.
            const bool must_succeed =
                !(schedule == Schedule::kCrashBeta && item.on_beta);
            const int attempts = must_succeed ? 12 : 2;
            const bool served = co_await open_eventually(
                self, rt, item.name, item.expect, attempts,
                25 * kMillisecond);
            if (must_succeed) {
              EXPECT_TRUE(served) << "open(" << item.name
                                  << ") never succeeded";
            }
            co_await self.delay(10 * kMillisecond);
          }

          if (schedule == Schedule::kCrashRestartAlpha) {
            // Bounded recovery: from the restart instant, a client that
            // keeps retrying must reach the NEW incarnation within the
            // retransmission + rebind budget.
            if (self.now() < kRestartAt) {
              co_await self.delay(kRestartAt - self.now());
            }
            const sim::SimTime resume = self.now();
            const bool recovered = co_await open_eventually(
                self, rt, "usr/mann/naming.mss",
                "Distributed name interpretation.", 40, 25 * kMillisecond);
            EXPECT_TRUE(recovered) << "no recovery after restart";
            EXPECT_LE(self.now() - resume, 4 * kSecond)
                << "recovery latency unbounded";
          }
          rt.set_cache(nullptr);
        });

        // Plan / kernel accounting coherence for the cell.
        const auto& st = plan.stats();
        if (loss == 0.0) {
          EXPECT_EQ(st.drops, 0u);
          EXPECT_EQ(st.duplicates, 0u);
          EXPECT_EQ(st.reorders, 0u);
        } else {
          EXPECT_GT(st.packets_seen, 0u);
        }
        EXPECT_EQ(st.crashes, schedule == Schedule::kNone ? 0u : 1u);
        EXPECT_EQ(st.restarts,
                  schedule == Schedule::kCrashRestartAlpha ? 1u : 0u);
      }
    }
  }
}

#if V_TRACE_ENABLED

/// One engineered failing cell: the wire from the workstation to beta is
/// dead, so the beta open defeats its retry budget and the kernel's
/// kNoReply path fires an automatic flight-recorder dump.  Runs under
/// schedule fuzz with `seed` and returns the rendered dump document.
std::string run_failing_cell_and_dump(std::uint64_t seed) {
  VFixture fx(ipc::CalibrationParams::SunWorkstation3Mbit(),
              servers::DiskModel::kMemory, naming::TeamConfig{}, seed);
  fault::FaultPlan plan(seed);
  fault::LinkFaults dead_wire;
  dead_wire.drop = 1.0;
  plan.set_link(fx.ws1.id(), fx.fs2.id(), dead_wire);
  fault::RetryPolicy quick;
  quick.initial_timeout = 4 * kMillisecond;
  quick.backoff = 2.0;
  quick.max_timeout = 16 * kMillisecond;
  quick.budget = 2;
  plan.set_retry(quick);
  fx.dom.install_faults(plan);

  fx.run_client([&](ipc::Process self, svc::Rt rt) -> Co<void> {
    (void)self;
    auto opened = co_await rt.open("[beta]pub/readme", kOpenRead);
    EXPECT_FALSE(opened.ok()) << "beta is unreachable by construction";
  });
  EXPECT_GT(fx.dom.flight().triggers(), 0u)
      << "retry-budget defeat did not trigger a dump";
  return fx.dom.flight().chrome_json();
}

TEST(FaultMatrix, FailingCellDumpIsByteIdentical) {
  // The dump is a REPRODUCTION ARTIFACT, not a log: flight records carry
  // simulated time and deterministic sequence numbers only, so the same
  // failing fuzz seed must render the same bytes, run after run.
  constexpr std::uint64_t kFailingSeed = 0xFA07D00DULL;
  const std::string first = run_failing_cell_and_dump(kFailingSeed);
  const std::string second = run_failing_cell_and_dump(kFailingSeed);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "flight dump differs across identical runs";
}

#endif  // V_TRACE_ENABLED

#else  // !V_FAULT_ENABLED

TEST(FaultMatrix, SkippedWithoutFaultSubsystem) {
  GTEST_SKIP() << "built with V_FAULT=OFF; the chaos matrix needs the "
                  "fault subsystem";
}

#endif  // V_FAULT_ENABLED

}  // namespace
}  // namespace v
