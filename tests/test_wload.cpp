// v::wload unit + integration coverage (DESIGN.md 4m):
//
//   - per-host streams: a host's decision sequence is a function of its
//     index alone, so growing the fleet never perturbs existing hosts;
//   - forest synthesis: deterministic per seed, compatibility mode emits
//     the legacy hand-rolled names bit-for-bit;
//   - Zipf sampler: exact CDF shape per seed, rank 0 hottest, alpha = 0
//     degenerates to uniform;
//   - the content oracle: pure, collision-distinct for distinct names;
//   - a small production day end-to-end: every client finishes, opens
//     flow in every phase, and the chaos oracle counts ZERO wrong replies.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "servers/file_server.hpp"
#include "servers/shard_fabric.hpp"
#include "wload/driver.hpp"
#include "wload/forest.hpp"
#include "wload/rng.hpp"
#include "wload/scenario.hpp"

namespace v {
namespace {

using wload::Forest;
using wload::ForestSpec;
using wload::HostStream;
using wload::Splitmix64;
using wload::Zipf;

// --- streams ---------------------------------------------------------------------

TEST(WloadRng, HostStreamDependsOnIndexAlone) {
  // The fleet-growth property: host 3's stream is the same whether the
  // fleet has 4 hosts or 4096 — there is no shared state to perturb.  The
  // stream is pure in (seed, index), so equality of fresh constructions is
  // exactly the guarantee.
  for (std::uint64_t index : {0ULL, 3ULL, 255ULL, 4095ULL}) {
    HostStream a(42, index);
    HostStream b(42, index);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
  }
}

TEST(WloadRng, AdjacentHostsDecorrelated) {
  // Neighbouring indexes (and neighbouring seeds) must not share a stream.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t index = 0; index < 256; ++index) {
    firsts.insert(HostStream(42, index).next());
  }
  EXPECT_EQ(firsts.size(), 256u);
  EXPECT_NE(HostStream(42, 7).next(), HostStream(43, 7).next());
}

TEST(WloadRng, ZipfShape) {
  Zipf zipf(64, 0.9);
  Splitmix64 rng(1);
  std::vector<std::uint64_t> counts(64, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 is the most popular and the head dominates the tail.
  for (std::size_t k = 1; k < 64; ++k) EXPECT_GE(counts[0], counts[k]);
  EXPECT_GT(counts[0], counts[63] * 4);

  // alpha = 0 degenerates to uniform: no rank may hog the distribution.
  Zipf flat(64, 0.0);
  std::vector<std::uint64_t> flat_counts(64, 0);
  for (int i = 0; i < 64000; ++i) ++flat_counts[flat.sample(rng)];
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_GT(flat_counts[k], 500u) << "rank " << k;
    EXPECT_LT(flat_counts[k], 1500u) << "rank " << k;
  }
}

// --- forest ----------------------------------------------------------------------

TEST(WloadForest, DeterministicPerSeed) {
  ForestSpec spec;
  spec.prefixes = 8;
  spec.dirs_per_prefix = 2;
  spec.files_per_dir = 3;
  spec.prefix_stem.clear();  // random component names
  Forest a(spec), b(spec);
  ASSERT_EQ(a.file_count(), b.file_count());
  for (std::size_t f = 0; f < a.file_count(); ++f) {
    EXPECT_EQ(a.name(f), b.name(f));
  }
  spec.seed = 2;
  Forest c(spec);
  bool any_differs = false;
  for (std::size_t f = 0; f < a.file_count(); ++f) {
    if (a.name(f) != c.name(f)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(WloadForest, CompatibilityModeEmitsLegacyNames) {
  // name_min == 0: the exact hand-rolled shapes the E4/E5 benches used
  // before the generator existed.
  ForestSpec spec;
  spec.prefixes = 3;
  spec.dirs_per_prefix = 1;
  spec.files_per_dir = 2;
  spec.name_min = 0;
  spec.prefix_stem = "ctx";
  Forest forest(spec);
  EXPECT_EQ(forest.prefix(0), "ctx0");
  EXPECT_EQ(forest.prefix(2), "ctx2");
  EXPECT_EQ(forest.name(0), "[ctx0]d0/f0.dat");
  EXPECT_EQ(forest.name(1), "[ctx0]d0/f1.dat");
  EXPECT_EQ(forest.name(5), "[ctx2]d0/f1.dat");
  EXPECT_EQ(forest.prefix_of(5), 2u);
}

TEST(WloadForest, ContentOracleIsPureAndDistinct) {
  EXPECT_EQ(Forest::content_for("[p0]d0/f0.dat"),
            Forest::content_for("[p0]d0/f0.dat"));
  std::set<std::string> contents;
  Forest forest(ForestSpec{.prefixes = 4});
  for (std::size_t f = 0; f < forest.file_count(); ++f) {
    contents.insert(Forest::content_for(forest.name(f)));
  }
  EXPECT_EQ(contents.size(), forest.file_count());
}

// --- the engine end-to-end -------------------------------------------------------

/// A pocket production day: forest on 2 file servers, a 2-shard fabric,
/// a handful of client hosts, compressed phases.
TEST(WloadDriver, PocketProductionDayCountsZeroWrongReplies) {
  using namespace sim;
  ipc::Domain dom;
  ForestSpec spec;
  spec.prefixes = 8;
  spec.dirs_per_prefix = 2;
  spec.files_per_dir = 2;
  Forest forest(spec);

  std::vector<std::unique_ptr<servers::FileServer>> fs;
  std::vector<servers::FileServer*> fs_ptrs;
  std::vector<ipc::ProcessId> fs_pids;
  for (int i = 0; i < 2; ++i) {
    ipc::Host& host = dom.add_host("fs" + std::to_string(i));
    fs.push_back(std::make_unique<servers::FileServer>(
        "fs" + std::to_string(i), servers::DiskModel::kMemory,
        /*register_service=*/false));
    servers::FileServer* srv = fs.back().get();
    fs_ptrs.push_back(srv);
    fs_pids.push_back(
        host.spawn("fs", [srv](ipc::Process p) { return srv->run(p); }));
  }

  servers::ShardFabric fabric(dom, {.shards = 2});
  fabric.install(forest.install(fs_ptrs, fs_pids));

  wload::Driver::Config cfg;
  cfg.hosts = 6;
  cfg.fabric_group = fabric.group();
  cfg.scenario.seed = 7;
  cfg.scenario.read_fraction = 1.0;  // verify EVERY open against the oracle
  cfg.scenario.think_min = 5 * kMillisecond;
  cfg.scenario.think_max = 25 * kMillisecond;
  cfg.scenario.phases = {
      {.kind = wload::PhaseKind::kWarmup, .duration = 200 * kMillisecond},
      {.kind = wload::PhaseKind::kSteady, .duration = 600 * kMillisecond},
      {.kind = wload::PhaseKind::kFlash, .duration = 400 * kMillisecond,
       .hot_fraction = 0.5, .hot_prefix = 1},
  };
  wload::Driver driver(dom, forest, cfg);
  dom.run();

  EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
  EXPECT_EQ(driver.clients_done(), cfg.hosts);
  EXPECT_EQ(driver.wrong_replies(), 0u);
  EXPECT_EQ(driver.total_errors(), 0u);
  EXPECT_GT(driver.total_opens(), 100u);
  // Every phase after warm-up saw traffic, and latencies were recorded.
  ASSERT_EQ(driver.phases().size(), 3u);
  for (std::size_t i = 1; i < driver.phases().size(); ++i) {
    EXPECT_GT(driver.phases()[i].opens, 0u) << "phase " << i;
    EXPECT_GT(driver.phases()[i].open_ms.count(), 0u) << "phase " << i;
  }
  // One map fetch per client is enough on a churn-free day.
  EXPECT_EQ(driver.router_stats().map_fetches, cfg.hosts);
  EXPECT_EQ(driver.router_stats().failures, 0u);
}

/// The fleet-growth property at the driver level: the per-host streams the
/// driver derives for hosts 0..N-1 are unchanged when the config asks for
/// more hosts (pure function of index — checked here via the seed mixer
/// the driver uses, which is the whole coupling surface).
TEST(WloadDriver, FleetGrowthKeepsExistingStreams) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(wload::host_stream_seed(99, i), wload::host_stream_seed(99, i));
  }
  // And the scripted scenario total is the sum of its phases.
  wload::Scenario day = wload::Scenario::production_day(1);
  sim::SimDuration total = 0;
  for (const auto& p : day.phases) total += p.duration;
  EXPECT_EQ(day.total_duration(), total);
}

}  // namespace
}  // namespace v
