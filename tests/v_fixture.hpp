// A standard simulated V installation for tests: one user workstation with
// a per-user context prefix server, and two file-server hosts ("alpha" and
// "beta") with a pre-populated naming forest, including a cross-server link
// (the curved arrow of Figure 4):
//
//   alpha: /usr/mann/{naming.mss,paper.mss}  /bin/{edit,shell}  /tmp
//          /usr/mann/proj -> beta:/pub           (cross-server link)
//   beta:  /pub/readme  /pub/data/points.dat
//
// Prefixes on ws1: [alpha] [beta] [home]=alpha:/usr/mann [bin]=alpha:/bin
//                  [storage] (logical -> ServiceId::kStorageServer)
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>

#include "ipc/kernel.hpp"
#include "naming/types.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace v::test {

/// Service group every file-server incarnation joins (V-fault rebinding):
/// recovery probes multicast here reach whichever incarnations are alive,
/// under whatever pids they currently hold.
inline constexpr ipc::GroupId kStorageGroup = 0xFA01;

struct VFixture {
  /// `fuzz_seed` != nullopt puts the event loop in schedule-fuzz mode
  /// before anything is spawned: same-timestamp events fire in a
  /// seed-determined permutation instead of scheduling order.
  explicit VFixture(
      ipc::CalibrationParams params =
          ipc::CalibrationParams::SunWorkstation3Mbit(),
      servers::DiskModel disk = servers::DiskModel::kMemory,
      naming::TeamConfig team = {},
      std::optional<std::uint64_t> fuzz_seed = std::nullopt)
      : dom(params),
        ws1(dom.add_host("ws1")),
        fs1(dom.add_host("fs1")),
        fs2(dom.add_host("fs2")),
        alpha("alpha", disk, /*register_service=*/true, team),
        beta("beta", disk, /*register_service=*/false, team),
        prefixes("mann", /*register_service=*/true, team) {
    if (fuzz_seed) dom.loop().enable_fuzz(*fuzz_seed);
    // Populate alpha.
    alpha.put_file("usr/mann/naming.mss", "Distributed name interpretation.");
    alpha.put_file("usr/mann/paper.mss", "ICDCS 1984.");
    alpha.put_file("bin/edit", std::string(4096, 'E'));
    alpha.put_file("bin/shell", std::string(2048, 'S'));
    alpha.mkdirs("tmp");
    alpha.map_well_known(naming::kHomeContext, "usr/mann");
    alpha.map_well_known(naming::kProgramsContext, "bin");
    alpha.map_well_known(naming::kTempContext, "tmp");
    // Populate beta.
    beta.put_file("pub/readme", "public files live here");
    beta.put_file("pub/data/points.dat", "1 2 3 4 5");

    // Every file-server incarnation joins the storage group on (re)start,
    // making it reachable by multicast recovery probes after a restart
    // hands it a fresh pid.
    alpha.set_service_group(kStorageGroup);
    beta.set_service_group(kStorageGroup);
    alpha_pid = fs1.spawn("alpha-fs", [this](ipc::Process p) {
      return alpha.run(p);
    });
    beta_pid = fs2.spawn("beta-fs", [this](ipc::Process p) {
      return beta.run(p);
    });

    // Cross-server link: alpha:/usr/mann/proj -> beta:/pub.
    alpha.put_link("usr/mann/proj",
                   {beta_pid, beta.context_of("pub")});

    // Standard prefixes for this user.
    prefixes.define("alpha", {.target = {alpha_pid, naming::kDefaultContext}});
    prefixes.define("beta", {.target = {beta_pid, naming::kDefaultContext}});
    prefixes.define("home",
                    {.target = {alpha_pid, alpha.context_of("usr/mann")}});
    prefixes.define("bin", {.target = {alpha_pid, alpha.context_of("bin")}});
    servers::ContextPrefixServer::Entry storage_entry;
    storage_entry.logical = true;
    storage_entry.service = ipc::ServiceId::kStorageServer;
    prefixes.define("storage", storage_entry);
    // Ordinary entries whose pinned server dies fall back to a multicast
    // recovery probe of the storage group.
    prefixes.set_rebind_group(kStorageGroup);
    prefix_pid = ws1.spawn("prefix-server", [this](ipc::Process p) {
      return prefixes.run(p);
    });
  }

  /// Restart alpha's host and re-spawn the server as a NEW incarnation
  /// (fresh pid, fresh generation floor; rejoins the storage group).
  void respawn_alpha() {
    if (!fs1.alive()) fs1.restart();
    alpha_pid = fs1.spawn("alpha-fs", [this](ipc::Process p) {
      return alpha.run(p);
    });
  }
  /// Same for beta.
  void respawn_beta() {
    if (!fs2.alive()) fs2.restart();
    beta_pid = fs2.spawn("beta-fs", [this](ipc::Process p) {
      return beta.run(p);
    });
  }

  /// Spawn a client whose body receives an attached runtime (current
  /// context = alpha's root) and run the simulation to idle.
  void run_client(std::function<sim::Co<void>(ipc::Process, svc::Rt)> body) {
    bool client_finished = false;
    ws1.spawn("client", [this, &client_finished, body = std::move(body)](
                            ipc::Process self) -> sim::Co<void> {
      auto rt = co_await svc::Rt::attach(
          self, naming::ContextPair{alpha_pid, naming::kDefaultContext});
      co_await body(self, rt);
      client_finished = true;
    });
    dom.run();
    check_clean();
    // A hung client (e.g. a request that was silently dropped) must fail
    // the test rather than pass vacuously.
    EXPECT_TRUE(client_finished) << "client parked forever";
  }

  /// Post-run health checks shared by every test that drives the fixture:
  /// no fiber failures (race reports arrive this way), no non-conformant
  /// server replies, no negative-delay clamps.
  void check_clean() {
    EXPECT_EQ(dom.process_failures(), 0u) << dom.first_failure();
    EXPECT_EQ(dom.lint().counters().server_violations, 0u)
        << dom.lint().first_dump();
    EXPECT_EQ(dom.loop().stats().negative_delay_clamps, 0u);
    // V-fault invariants: at-most-once (no server answered a request
    // twice) and monotone incarnations (every restart raised its
    // generation floor).
    EXPECT_EQ(dom.lint().counters().duplicate_replies, 0u)
        << dom.lint().first_dump();
    EXPECT_EQ(dom.lint().counters().stale_incarnations, 0u)
        << dom.lint().first_dump();
#if V_TRACE_ENABLED
    // Chaos-oracle trigger: any failed expectation in the current test
    // fires a flight-recorder dump, so a failing fuzz seed hands back a
    // Perfetto-loadable post-mortem instead of just a counter mismatch.
    // Set V_FLIGHT_DUMP=<path> to get the document as a file.
    if (::testing::Test::HasFailure()) {
      if (const char* path = std::getenv("V_FLIGHT_DUMP")) {
        dom.flight().set_dump_path(path);
      }
      dom.flight().trigger(obs::kDumpChaosOracle, dom.now());
    }
#endif
  }

  ipc::Domain dom;
  ipc::Host& ws1;
  ipc::Host& fs1;
  ipc::Host& fs2;
  servers::FileServer alpha;
  servers::FileServer beta;
  servers::ContextPrefixServer prefixes;
  ipc::ProcessId alpha_pid;
  ipc::ProcessId beta_pid;
  ipc::ProcessId prefix_pid;
};

}  // namespace v::test
