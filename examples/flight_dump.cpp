// V-blackbox walkthrough: a Send crosses a dead wire, the retry budget
// runs out, and the kernel's kNoReply defeat automatically fires a flight
// recorder dump — the last N events on every host, rendered as Chrome
// trace-event JSON for Perfetto (ui.perfetto.dev) or chrome://tracing.
// No tracing has to be enabled and nothing is configured in advance
// beyond the dump path: the recorder is always on.
//
// Usage: flight_dump [flight.json]
#include <cstdio>
#include <string>

#include "fault/fault.hpp"
#include "ipc/kernel.hpp"
#include "sim/time.hpp"

int main(int argc, char** argv) {
  using namespace v;
  const std::string out_path = argc > 1 ? argv[1] : "flight.json";

  ipc::Domain dom;
  dom.flight().set_dump_path(out_path);  // no-op shell with -DV_TRACE=OFF

  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  const ipc::ProcessId server =
      fs1.spawn("echo", [](ipc::Process self) -> sim::Co<void> {
        for (;;) {
          auto env = co_await self.receive();
          self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
        }
      });

  // The adversary: every packet from ws1 to fs1 is lost.  A quick retry
  // policy keeps the demo short — 3 retransmissions, then kNoReply.
  fault::FaultPlan plan(0xB1ACB0ULL);
  fault::LinkFaults dead_wire;
  dead_wire.drop = 1.0;
  plan.set_link(ws1.id(), fs1.id(), dead_wire);
  fault::RetryPolicy quick;
  quick.initial_timeout = 4 * sim::kMillisecond;
  quick.backoff = 2.0;
  quick.max_timeout = 16 * sim::kMillisecond;
  quick.budget = 3;
  plan.set_retry(quick);
  dom.install_faults(plan);  // no-op with -DV_FAULT=OFF: the open succeeds

  bool gave_up = false;
  ws1.spawn("client", [&, server](ipc::Process self) -> sim::Co<void> {
    msg::Message probe;
    probe.set_code(0x0200);
    const auto reply = co_await self.send(probe, server);
    gave_up = reply.reply_code() == ReplyCode::kNoReply;
    std::printf("send answered with %s after %.1f simulated ms\n",
                std::string(to_string(reply.reply_code())).c_str(),
                sim::to_ms(self.now()));
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }

#if V_TRACE_ENABLED
  if (!gave_up) {
    std::printf("(faults compiled out: no defeat, so no automatic dump; "
                "writing one by hand)\n");
    dom.flight().trigger(obs::kDumpOnDemand, dom.now());
  }
  std::printf(
      "flight recorder: %llu records across %zu rings, %llu trigger(s)\n",
      static_cast<unsigned long long>(dom.flight().records()),
      dom.flight().rings(),
      static_cast<unsigned long long>(dom.flight().triggers()));
  std::printf("post-mortem dump written to %s — load it in Perfetto\n",
              out_path.c_str());
#else
  (void)gave_up;
  std::printf("(built with -DV_TRACE=OFF: recorder compiled out; %s not "
              "written)\n", out_path.c_str());
#endif
  return 0;
}
