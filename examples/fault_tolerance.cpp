// Reliability comparison (paper section 2.2): what breaks when servers
// crash under the distributed model versus the centralized-name-server
// baseline.
//
//   1. A storage server crashes and restarts with a NEW pid.  A logical
//      context prefix ([storage], bound to the service id) keeps working —
//      the prefix server re-resolves with GetPid at each use.  A pid-bound
//      prefix goes stale.
//   2. The central name server's host dies.  Every centrally-resolved name
//      becomes unusable although the object's own server is healthy; the
//      distributed path keeps working.
//   3. Deleting a file under the central model leaves a stale registry
//      binding (lookup succeeds, use fails) — the consistency argument.
#include <cstdio>
#include <string>

#include "baseline/central.hpp"
#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace {
void say(v::ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", v::sim::to_ms(self.now()), text.c_str());
}
}  // namespace

int main() {
  using namespace v;
  using sim::kMillisecond;
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& storage_host = dom.add_host("storage-host");
  auto& ns_host = dom.add_host("nameserver-host");

  servers::FileServer fs_v1("storage-v1");
  fs_v1.put_file("shared/notes.txt", "survives crashes");
  const auto fs_v1_pid = storage_host.spawn(
      "storage-v1", [&](ipc::Process p) { return fs_v1.run(p); });

  servers::ContextPrefixServer prefixes("user");
  prefixes.define("pinned", {.target = {fs_v1_pid,
                                        naming::kDefaultContext}});
  servers::ContextPrefixServer::Entry logical;
  logical.logical = true;
  logical.service = ipc::ServiceId::kStorageServer;
  prefixes.define("storage", logical);
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  baseline::CentralNameServer central;
  const auto ns_pid = ns_host.spawn(
      "central-ns", [&](ipc::Process p) { return central.run(p); });
  central.preload("/storage/shared/notes.txt",
                  {{fs_v1_pid, naming::kDefaultContext},
                   "notes.txt"});  // leaf within shared — fixed below
  central.preload("/storage/shared/doomed.txt",
                  {{fs_v1_pid, naming::kDefaultContext}, "doomed.txt"});
  fs_v1.put_file("shared/doomed.txt", "about to be deleted");

  // Scripted failures.
  servers::FileServer fs_v2("storage-v2");
  fs_v2.put_file("shared/notes.txt", "survives crashes");
  ipc::ProcessId fs_v2_pid;
  dom.loop().schedule_at(100 * kMillisecond, [&] { storage_host.crash(); });
  dom.loop().schedule_at(150 * kMillisecond, [&] {
    storage_host.restart();
    fs_v2_pid = storage_host.spawn(
        "storage-v2", [&](ipc::Process p) { return fs_v2.run(p); });
  });
  dom.loop().schedule_at(400 * kMillisecond, [&] { ns_host.crash(); });

  ws.spawn("operator", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_v1_pid, naming::kDefaultContext});
    baseline::CentralClient nc(self, ns_pid);
    constexpr auto kRead = naming::wire::kOpenRead;

    auto try_open = [&](std::string_view name) -> sim::Co<std::string> {
      auto opened = co_await rt.open(name, kRead);
      if (!opened.ok()) co_return std::string(to_string(opened.code()));
      svc::File f = opened.take();
      (void)co_await f.close();
      co_return std::string("OK");
    };

    say(self, "--- phase 1: before any failure ---");
    say(self, "  [storage]shared/notes.txt : " +
                  co_await try_open("[storage]shared/notes.txt"));
    say(self, "  [pinned]shared/notes.txt  : " +
                  co_await try_open("[pinned]shared/notes.txt"));

    co_await self.delay(200 * kMillisecond);  // crash at 100, restart at 150
    say(self, "--- phase 2: storage server crashed and restarted with a "
              "new pid ---");
    say(self, "  [storage] (logical, GetPid at use) : " +
                  co_await try_open("[storage]shared/notes.txt"));
    say(self, "  [pinned]  (bound to the dead pid)  : " +
                  co_await try_open("[pinned]shared/notes.txt"));
    say(self, "  repairing [pinned] by redefining the prefix...");
    const naming::ContextPair v2_root{fs_v2_pid, naming::kDefaultContext};
    (void)co_await rt.add_prefix("pinned", v2_root);
    say(self, "  [pinned] after repair              : " +
                  co_await try_open("[pinned]shared/notes.txt"));

    say(self, "--- phase 3: consistency under deletion ---");
    // Recreate doomed.txt on v2 and register it centrally, then delete it
    // through the distributed protocol.
    (void)co_await rt.create("[storage]shared/doomed.txt");
    const baseline::Binding doomed_binding{
        {fs_v2_pid, fs_v2.context_of("shared")}, "doomed.txt"};
    (void)co_await nc.register_name("/storage/shared/doomed.txt",
                                    doomed_binding);
    (void)co_await rt.remove("[storage]shared/doomed.txt");
    auto stale = co_await nc.lookup("/storage/shared/doomed.txt");
    say(self, std::string("  central registry after delete: lookup ") +
                  (stale.ok() ? "STILL SUCCEEDS (stale!)" : "fails"));
    if (stale.ok()) {
      rt.set_current(stale.value().home);
      auto use = co_await rt.open(stale.value().leaf, kRead);
      say(self, "  ...using the stale binding: " +
                    std::string(to_string(use.code())));
      rt.set_current({fs_v2_pid, naming::kDefaultContext});
    }

    co_await self.delay(200 * kMillisecond);  // name server dies at 400
    say(self, "--- phase 4: the central name server's host is down ---");
    auto central_lookup = co_await nc.lookup("/storage/shared/notes.txt");
    say(self, "  central lookup: " +
                  std::string(to_string(central_lookup.code())));
    say(self, "  distributed name [storage]shared/notes.txt : " +
                  co_await try_open("[storage]shared/notes.txt"));
    say(self, "the object's server never went down in phase 4 — only the "
              "central naming authority did.");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("fault_tolerance completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
