// The V naming forest (paper Figure 4): several file servers, each the root
// of its own name-space tree, unified by per-user context prefixes and by
// cross-server links that the mapping procedure follows transparently by
// forwarding partially-interpreted requests.
//
// Also demonstrates section 6's "reverse mapping" caveat: the name the
// server can reconstruct for an object is not necessarily the name used to
// reach it.
#include <cstdio>
#include <string>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace {
void say(v::ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", v::sim::to_ms(self.now()), text.c_str());
}
}  // namespace

int main() {
  using namespace v;
  ipc::Domain dom;
  auto& ws = dom.add_host("ws-cheriton");
  auto& h1 = dom.add_host("vax1");
  auto& h2 = dom.add_host("vax2");
  auto& h3 = dom.add_host("sun-fs");

  // Three trees in the forest.
  servers::FileServer vax1("vax1");
  vax1.put_file("usr/cheriton/naming.mss", "draft v3");
  servers::FileServer vax2("vax2", servers::DiskModel::kMemory, false);
  vax2.put_file("projects/v-system/kernel/ipc.c", "Send(); Receive();");
  servers::FileServer sunfs("sun-fs", servers::DiskModel::kMemory, false);
  sunfs.put_file("scratch/results.dat", "2.56ms 1.21ms 3.70ms");

  const auto vax1_pid = h1.spawn("vax1", [&](ipc::Process p) {
    return vax1.run(p);
  });
  const auto vax2_pid = h2.spawn("vax2", [&](ipc::Process p) {
    return vax2.run(p);
  });
  const auto sunfs_pid = h3.spawn("sun-fs", [&](ipc::Process p) {
    return sunfs.run(p);
  });

  // Curved arrows: vax1:/usr/cheriton/vproj -> vax2:/projects/v-system,
  // and vax2:.../kernel/tmp -> sun-fs:/scratch.
  vax1.put_link("usr/cheriton/vproj",
                {vax2_pid, vax2.context_of("projects/v-system")});
  vax2.put_link("projects/v-system/kernel/tmp",
                {sunfs_pid, sunfs.context_of("scratch")});

  // This user's view of the forest.
  servers::ContextPrefixServer prefixes("cheriton");
  prefixes.define("vax1", {.target = {vax1_pid, naming::kDefaultContext}});
  prefixes.define("home",
                  {.target = {vax1_pid, vax1.context_of("usr/cheriton")}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  ws.spawn("explorer", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {vax1_pid, naming::kDefaultContext});

    say(self, "one name, three servers:");
    say(self, "  opening [home]vproj/kernel/tmp/results.dat");
    auto opened = co_await rt.open("[home]vproj/kernel/tmp/results.dat",
                                   naming::wire::kOpenRead);
    svc::File f = opened.take();
    say(self, "  request was forwarded vax1 -> vax2 -> sun-fs; instance "
              "lives at the final server");
    auto bytes = co_await f.read_all();
    say(self, "  content: " +
                  std::string(reinterpret_cast<const char*>(
                                  bytes.value().data()),
                              bytes.value().size()));

    say(self, "reverse mapping the open file (GetFileName):");
    auto reverse = co_await rt.file_name(f.server(), f.instance());
    say(self, "  -> \"" + reverse.value() + "\"");
    say(self, "  note: NOT the [home]vproj/... name we used — forwarding "
              "history is lost (paper section 6)");
    (void)co_await f.close();

    say(self, "mapping the context [home]vproj/kernel:");
    auto mapped = co_await rt.map_context("[home]vproj/kernel");
    say(self, "  -> (server=" + dom.process_name(mapped.value().server) +
                  ", context-id=" + std::to_string(mapped.value().context) +
                  ")");

    say(self, "building a new link through the protocol: "
              "[vax1]usr/cheriton/bench -> sun-fs:/scratch");
    (void)co_await rt.link("[vax1]usr/cheriton/bench",
                           {sunfs_pid, sunfs.context_of("scratch")});
    auto via_new_link =
        co_await rt.open("[home]bench/results.dat", naming::wire::kOpenRead);
    say(self, std::string("  open through the new link: ") +
                  (via_new_link.ok() ? "OK" : "failed"));
    if (via_new_link.ok()) {
      svc::File g = via_new_link.take();
      (void)co_await g.close();
    }

    say(self, "the same forest seen by a different user has different "
              "prefixes — per-user context prefix servers make top-level "
              "names personal.");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("naming_forest completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
