// Quickstart: bring up a small V domain — one diskless workstation with a
// per-user context prefix server, one file server — then create, write,
// read, query and list files through the name-handling protocol.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace {

void say(v::ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", v::sim::to_ms(self.now()), text.c_str());
}

}  // namespace

int main() {
  using namespace v;

  // A V domain: the simulated installation (network + hosts + cost model,
  // calibrated to 10 MHz SUN workstations on 3 Mbit Ethernet).
  ipc::Domain dom;
  auto& workstation = dom.add_host("ws-mann");
  auto& server_host = dom.add_host("storage1");

  // A storage server with some initial content.
  servers::FileServer fs("storage1");
  fs.put_file("usr/mann/hello.txt", "V-System says hello.");
  fs.map_well_known(naming::kHomeContext, "usr/mann");
  const auto fs_pid =
      server_host.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  // The per-user context prefix server on the workstation.
  servers::ContextPrefixServer prefixes("mann");
  prefixes.define("storage1", {.target = {fs_pid, naming::kDefaultContext}});
  prefixes.define("home", {.target = {fs_pid, naming::kHomeContext}});
  workstation.spawn("prefix-server",
                    [&](ipc::Process p) { return prefixes.run(p); });

  // The user's program.
  workstation.spawn("quickstart", [&](ipc::Process self) -> sim::Co<void> {
    // Attach the standard run-time routines; current context = fs root.
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});

    say(self, "reading [home]hello.txt through the prefix server...");
    auto opened = co_await rt.open("[home]hello.txt", naming::wire::kOpenRead);
    if (!opened.ok()) {
      say(self, "open failed: " + std::string(to_string(opened.code())));
      co_return;
    }
    svc::File hello = opened.take();
    auto bytes = co_await hello.read_all();
    say(self, "  -> \"" +
                  std::string(reinterpret_cast<const char*>(
                                  bytes.value().data()),
                              bytes.value().size()) +
                  "\"");
    (void)co_await hello.close();

    say(self, "creating [home]journal.txt and writing to it...");
    auto journal = co_await rt.open(
        "[home]journal.txt",
        naming::wire::kOpenRead | naming::wire::kOpenWrite |
            naming::wire::kOpenCreate);
    const std::string entry = "Tried distributed name interpretation today.";
    (void)co_await journal.value().write_all(
        std::as_bytes(std::span(entry.data(), entry.size())));
    (void)co_await journal.value().close();

    say(self, "querying its description record...");
    auto desc = co_await rt.query("[home]journal.txt");
    say(self, "  -> type=" + std::string(to_string(desc.value().type)) +
                  " size=" + std::to_string(desc.value().size) + " owner=" +
                  desc.value().owner);

    say(self, "changing current context to [home] (like chdir)...");
    (void)co_await rt.change_context("[home]");
    say(self, "listing the current context directory:");
    auto records = co_await rt.list_context("");
    for (const auto& rec : records.value()) {
      say(self, "  " + rec.name + "  (" +
                    std::string(to_string(rec.type)) + ", " +
                    std::to_string(rec.size) + " bytes)");
    }

    say(self, "asking the server for the name of the current context...");
    auto name = co_await rt.context_name(rt.current());
    say(self, "  -> " + name.value());
    say(self, "done.");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("quickstart completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
