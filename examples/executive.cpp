// The V executive (paper section 7 mentions "our multiple window and
// executive system"): a scripted command shell whose every command is built
// from the same five protocol operations — open, read/write, query, remove,
// list-context — plus the current-context mechanism.  Failures are raised
// at the workstation's exception server, whose pending reports are
// themselves named objects the shell can list and inspect.
//
// Commands demonstrated: cd, pwd, ls, ls <pattern>, type, copy, del,
// mkdir, name (reverse-map), faults.
#include <cstdio>
#include <string>
#include <vector>

#include "ipc/kernel.hpp"
#include "naming/match.hpp"
#include "naming/protocol.hpp"
#include "servers/exception_server.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace {

using namespace v;

void out(ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", sim::to_ms(self.now()), text.c_str());
}

std::string to_str(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

/// The executive: interprets one scripted command per call.
class Executive {
 public:
  Executive(ipc::Process self, svc::Rt rt, ipc::ProcessId exc_server)
      : self_(self), rt_(std::move(rt)), exc_server_(exc_server) {}

  sim::Co<void> run(const std::vector<std::string>& script) {
    for (const auto& line : script) {
      out(self_, "% " + line);
      co_await execute(line);
    }
  }

 private:
  sim::Co<void> execute(const std::string& line) {
    const auto space = line.find(' ');
    const std::string cmd = line.substr(0, space);
    const std::string arg =
        space == std::string::npos ? "" : line.substr(space + 1);
    const auto arg2_pos = arg.find(' ');
    const std::string arg1 =
        arg2_pos == std::string::npos ? arg : arg.substr(0, arg2_pos);
    const std::string arg2 =
        arg2_pos == std::string::npos ? "" : arg.substr(arg2_pos + 1);

    if (cmd == "cd") {
      const auto rc = co_await rt_.change_context(arg1);
      if (!v::ok(rc)) co_await fail("cd", arg1, rc);
    } else if (cmd == "pwd") {
      auto name = co_await rt_.context_name(rt_.current());
      out(self_, name.ok() ? "  " + name.value()
                           : "  (no name for current context)");
    } else if (cmd == "ls") {
      // No co_await inside ?: — see the compiler note in src/sim/task.hpp.
      Result<std::vector<naming::ObjectDescriptor>> records(
          ReplyCode::kNotFound);
      if (naming::has_glob_chars(arg1)) {
        records = co_await rt_.list_matching("", arg1);
      } else {
        records = co_await rt_.list_context(arg1);
      }
      if (!records.ok()) {
        co_await fail("ls", arg1, records.code());
        co_return;
      }
      for (const auto& rec : records.value()) {
        out(self_, "  " + rec.name + "  (" +
                       std::string(to_string(rec.type)) + ", " +
                       std::to_string(rec.size) + " bytes, owner=" +
                       rec.owner + ")");
      }
    } else if (cmd == "type") {
      auto opened = co_await rt_.open(arg1, naming::wire::kOpenRead);
      if (!opened.ok()) {
        co_await fail("type", arg1, opened.code());
        co_return;
      }
      svc::File f = opened.take();
      auto bytes = co_await f.read_all();
      (void)co_await f.close();
      out(self_, "  " + (bytes.ok() ? to_str(bytes.value()) : "<error>"));
    } else if (cmd == "copy") {
      auto src = co_await rt_.open(arg1, naming::wire::kOpenRead);
      if (!src.ok()) {
        co_await fail("copy", arg1, src.code());
        co_return;
      }
      svc::File in = src.take();
      auto bytes = co_await in.read_all();
      (void)co_await in.close();
      auto dst = co_await rt_.open(
          arg2, naming::wire::kOpenWrite | naming::wire::kOpenCreate);
      if (!dst.ok()) {
        co_await fail("copy ->", arg2, dst.code());
        co_return;
      }
      svc::File out_file = dst.take();
      (void)co_await out_file.write_all(bytes.value());
      (void)co_await out_file.close();
    } else if (cmd == "del") {
      const auto rc = co_await rt_.remove(arg1);
      if (!v::ok(rc)) co_await fail("del", arg1, rc);
    } else if (cmd == "mkdir") {
      const auto rc = co_await rt_.make_context(arg1);
      if (!v::ok(rc)) co_await fail("mkdir", arg1, rc);
    } else if (cmd == "name") {
      auto opened = co_await rt_.open(arg1, naming::wire::kOpenRead);
      if (!opened.ok()) {
        co_await fail("name", arg1, opened.code());
        co_return;
      }
      svc::File f = opened.take();
      auto name = co_await rt_.file_name(f.server(), f.instance());
      (void)co_await f.close();
      out(self_, name.ok() ? "  server-local name: " + name.value()
                           : "  (no inverse mapping)");
    } else if (cmd == "faults") {
      rt_.set_current({exc_server_, naming::kDefaultContext});
      auto records = co_await rt_.list_context("");
      for (const auto& rec : records.value()) {
        out(self_, "  " + rec.name + "  from pid " +
                       std::to_string(rec.server_pid) + ": " +
                       std::to_string(rec.size) + "-byte report");
        auto opened = co_await rt_.open(rec.name, naming::wire::kOpenRead);
        if (opened.ok()) {
          svc::File f = opened.take();
          auto text = co_await f.read_all();
          (void)co_await f.close();
          if (text.ok()) out(self_, "    \"" + to_str(text.value()) + "\"");
        }
      }
    } else {
      co_await fail("unknown command", cmd, ReplyCode::kIllegalRequest);
    }
  }

  // Takes only trivially-destructible arguments: temporaries with
  // destructors must not appear in co_await expressions (GCC 12.2 bug;
  // see src/sim/task.hpp).
  sim::Co<void> fail(std::string_view op, std::string_view arg,
                     ReplyCode code) {
    out(self_, "  error: " + std::string(to_string(code)));
    const std::string detail = std::string(op) + " " + std::string(arg) +
                               ": " + std::string(to_string(code));
    (void)co_await servers::ExceptionServer::raise(
        self_, exc_server_, servers::FaultCode::kProtocolViolation, detail);
  }

  ipc::Process self_;
  svc::Rt rt_;
  ipc::ProcessId exc_server_;
};

}  // namespace

int main() {
  using namespace v;
  ipc::Domain dom;
  auto& ws = dom.add_host("ws-mann");
  auto& fsh = dom.add_host("storage1");

  servers::FileServer fs("storage1");
  fs.put_file("usr/mann/naming.mss", "Distributed name interpretation.");
  fs.put_file("usr/mann/refs.bib", "@inproceedings{cheriton84naming}");
  fs.mkdirs("tmp");
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  servers::ContextPrefixServer prefixes("mann");
  prefixes.define("home", {.target = {fs_pid, fs.context_of("usr/mann")}});
  prefixes.define("tmp", {.target = {fs_pid, fs.context_of("tmp")}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  servers::ExceptionServer exceptions;
  const auto exc_pid =
      ws.spawn("exception-server",
               [&](ipc::Process p) { return exceptions.run(p); });

  ws.spawn("executive", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    Executive shell(self, rt, exc_pid);
    const std::vector<std::string> script = {
        "cd [home]",
        "pwd",
        "ls",
        "type naming.mss",
        "copy naming.mss [tmp]draft.mss",
        "ls [tmp]",
        "name [tmp]draft.mss",
        "ls *.mss",
        "type missing-file.txt",   // fails -> raises an exception report
        "del [tmp]draft.mss",
        "mkdir [tmp]build",
        "ls [tmp]",
        "faults",                  // exception reports are named objects too
    };
    co_await shell.run(script);
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("executive completed in %.2f simulated ms; %zu messages, %zu "
              "forwards\n",
              sim::to_ms(dom.now()),
              static_cast<std::size_t>(dom.stats().messages_sent),
              static_cast<std::size_t>(dom.stats().forwards));
  return 0;
}
