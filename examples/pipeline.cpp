// A shell-style pipeline over V pipes:  producer | filter | consumer,
// three processes on two workstations connected only by NAMED pipes on the
// pipe server.  Demonstrates the I/O protocol's claim (paper section 3.2)
// that program input/output connects uniformly to "disk files, terminals,
// pipes, network connections..." — the filter reads one named object and
// writes another without knowing either is a pipe, and the consumer spools
// its output to a FILE through the identical interface.
#include <cstdio>
#include <string>
#include <vector>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/pipe_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"
#include "svc/stream.hpp"

namespace {
using namespace v;

void say(ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", sim::to_ms(self.now()), text.c_str());
}
std::span<const std::byte> as_span(std::string_view text) {
  return std::as_bytes(std::span(text.data(), text.size()));
}

/// Line assembler over a pipe end.  Pipes are sequential, not
/// block-addressed (each ReadInstance returns the NEXT bytes), so the
/// block-caching svc::Stream does not apply; this reader carries partial
/// lines across reads instead.
class PipeLineReader {
 public:
  explicit PipeLineReader(svc::File file) : file_(std::move(file)) {}

  /// Next full line (without '\n'); kEndOfFile when the pipe is drained
  /// and all writers have closed.
  sim::Co<Result<std::string>> read_line(ipc::Process& self) {
    (void)self;
    for (;;) {
      const auto newline = carry_.find('\n');
      if (newline != std::string::npos) {
        std::string line = carry_.substr(0, newline);
        carry_.erase(0, newline + 1);
        co_return line;
      }
      std::vector<std::byte> chunk(128);
      auto got = co_await file_.read_block(0, chunk);
      if (!got.ok()) {
        if (got.code() == ReplyCode::kEndOfFile && !carry_.empty()) {
          std::string line = std::move(carry_);
          carry_.clear();
          co_return line;
        }
        co_return got.code();
      }
      carry_.append(reinterpret_cast<const char*>(chunk.data()),
                    got.value());
    }
  }

  sim::Co<ReplyCode> close() { return file_.close(); }

 private:
  svc::File file_;
  std::string carry_;
};
}  // namespace

int main() {
  using namespace v;
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  auto& fsh = dom.add_host("storage1");

  servers::PipeServer pipes;
  const auto pipe_pid =
      ws1.spawn("pipe-server", [&](ipc::Process p) { return pipes.run(p); });
  servers::FileServer fs("storage1");
  fs.mkdirs("out");
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  servers::ContextPrefixServer prefixes1("user1");
  prefixes1.define("pipes", {.target = {pipe_pid, naming::kDefaultContext}});
  prefixes1.define("out", {.target = {fs_pid, fs.context_of("out")}});
  ws1.spawn("prefix-1", [&](ipc::Process p) { return prefixes1.run(p); });
  servers::ContextPrefixServer prefixes2("user2");
  prefixes2.define("pipes", {.target = {pipe_pid, naming::kDefaultContext}});
  prefixes2.define("out", {.target = {fs_pid, fs.context_of("out")}});
  ws2.spawn("prefix-2", [&](ipc::Process p) { return prefixes2.run(p); });

  constexpr auto kW = naming::wire::kOpenWrite | naming::wire::kOpenCreate;
  constexpr auto kR = naming::wire::kOpenRead;

  // Stage 1 (ws1): emit raw measurement lines into [pipes]raw.
  ws1.spawn("producer", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {pipe_pid, naming::kDefaultContext});
    auto w = co_await rt.open("[pipes]raw", kW);
    svc::File out = w.take();
    const double samples[] = {2.56, 0.77, 1.21, 3.70, 5.14, 7.69};
    for (double s : samples) {
      const std::string line = "sample " + std::to_string(s) + "\n";
      (void)co_await out.write_block(0, as_span(line));
      co_await self.delay(5 * sim::kMillisecond);
    }
    (void)co_await out.close();
    say(self, "producer: done (6 samples into [pipes]raw)");
  });

  // Stage 2 (ws2): read [pipes]raw, keep lines >= 3 ms, write [pipes]slow.
  ws2.spawn("filter", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {pipe_pid, naming::kDefaultContext});
    auto r = co_await rt.open("[pipes]raw", kR | naming::wire::kOpenCreate);
    auto w = co_await rt.open("[pipes]slow", kW);
    PipeLineReader in(r.take());
    svc::File out = w.take();
    int kept = 0, dropped = 0;
    for (;;) {
      auto line = co_await in.read_line(self);
      if (!line.ok()) break;  // EndOfFile when the producer closes
      const double value = std::atof(line.value().c_str() + 7);
      if (value >= 3.0) {
        const std::string fwd = line.value() + "\n";
        (void)co_await out.write_block(0, as_span(fwd));
        ++kept;
      } else {
        ++dropped;
      }
    }
    (void)co_await in.close();
    (void)co_await out.close();
    say(self, "filter: kept " + std::to_string(kept) + ", dropped " +
                  std::to_string(dropped));
  });

  // Stage 3 (ws1): read [pipes]slow, spool to the FILE [out]slow.txt.
  ws1.spawn("consumer", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {pipe_pid, naming::kDefaultContext});
    auto r = co_await rt.open("[pipes]slow",
                              kR | naming::wire::kOpenCreate);
    auto spool = co_await rt.open(
        "[out]slow.txt", kR | kW);  // append needs read-modify-write
    PipeLineReader in(r.take());
    svc::Stream out(spool.take());
    int lines = 0;
    for (;;) {
      auto line = co_await in.read_line(self);
      if (!line.ok()) break;
      const std::string annotated = line.value() + "  # over 3 ms\n";
      (void)co_await out.append(annotated);
      ++lines;
    }
    (void)co_await in.close();
    (void)co_await out.close();
    say(self, "consumer: spooled " + std::to_string(lines) +
                  " lines to [out]slow.txt");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("--- [out]slow.txt on the file server ---\n%s",
              fs.read_file("out/slow.txt").value().c_str());
  std::printf("pipeline completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
