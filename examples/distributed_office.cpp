// A distributed office: files, printing, virtual terminals, TCP
// connections and ARPA mail — five different kinds of objects behind five
// different servers, all reached through the SAME five operations (open,
// read/write, query, remove, list-context).  This is the paper's
// uniformity claim made runnable, including its extensibility story: the
// mail server keeps the foreign "user@host" syntax intact.
#include <cstdio>
#include <string>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/internet_server.hpp"
#include "servers/mail_server.hpp"
#include "servers/prefix_server.hpp"
#include "servers/printer_server.hpp"
#include "servers/terminal_server.hpp"
#include "svc/runtime.hpp"

namespace {
void say(v::ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", v::sim::to_ms(self.now()), text.c_str());
}
std::span<const std::byte> as_span(std::string_view text) {
  return std::as_bytes(std::span(text.data(), text.size()));
}
}  // namespace

int main() {
  using namespace v;
  ipc::Domain dom;
  auto& ws = dom.add_host("ws-mann");
  auto& fsh = dom.add_host("storage1");
  auto& svh = dom.add_host("services");

  servers::FileServer fs("storage1");
  fs.put_file("usr/mann/report.ps", std::string(900, 'R'));
  servers::PrinterServer printer(/*bytes_per_second=*/3000);
  servers::TerminalServer terminals;
  servers::InternetServer internet;
  servers::MailServer mail;

  const auto fs_pid = fsh.spawn("fs", [&](ipc::Process p) {
    return fs.run(p);
  });
  const auto printer_pid = svh.spawn("printer", [&](ipc::Process p) {
    return printer.run(p);
  });
  const auto vt_pid = ws.spawn("vgts", [&](ipc::Process p) {
    return terminals.run(p);
  });
  const auto inet_pid = svh.spawn("inet", [&](ipc::Process p) {
    return internet.run(p);
  });
  const auto mail_pid = svh.spawn("mail", [&](ipc::Process p) {
    return mail.run(p);
  });

  servers::ContextPrefixServer prefixes("mann");
  prefixes.define("home", {.target = {fs_pid, naming::kDefaultContext}});
  prefixes.define("print", {.target = {printer_pid, naming::kDefaultContext}});
  prefixes.define("terminals", {.target = {vt_pid, naming::kDefaultContext}});
  prefixes.define("tcp", {.target = {inet_pid, naming::kDefaultContext}});
  prefixes.define("mail", {.target = {mail_pid, naming::kDefaultContext}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  ws.spawn("office-user", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    constexpr auto kRw = naming::wire::kOpenRead | naming::wire::kOpenWrite |
                         naming::wire::kOpenCreate;

    say(self, "print a file: copy [home]usr/mann/report.ps to "
              "[print]report.ps");
    auto src = co_await rt.open("[home]usr/mann/report.ps",
                                naming::wire::kOpenRead);
    auto ps = co_await src.value().read_all();
    (void)co_await src.value().close();
    auto job = co_await rt.open("[print]report.ps",
                                naming::wire::kOpenWrite |
                                    naming::wire::kOpenCreate);
    (void)co_await job.value().write_all(ps.value());
    (void)co_await job.value().close();

    say(self, "open a virtual terminal and type into it");
    auto vt = co_await rt.open("[terminals]vt01", kRw);
    (void)co_await vt.value().write_block(0, as_span("% print report.ps\n"));
    (void)co_await vt.value().close();

    say(self, "open a TCP connection [tcp]su-score.arpa:25 and ping it");
    auto conn = co_await rt.open("[tcp]su-score.arpa:25", kRw);
    (void)co_await conn.value().write_block(0, as_span("HELO navajo"));
    std::vector<std::byte> echo(11);
    (void)co_await conn.value().read_block(0, echo);
    (void)co_await conn.value().close();

    say(self, "deliver mail to [mail]cheriton@su-score.ARPA");
    auto box = co_await rt.open("[mail]cheriton@su-score.ARPA", kRw);
    (void)co_await box.value().write_block(
        0, as_span("Report queued on the laser printer."));
    (void)co_await box.value().close();

    say(self, "ONE list-directory flow over five different servers:");
    for (const char* ctx :
         {"[home]usr/mann", "[print]", "[terminals]", "[tcp]", "[mail]"}) {
      auto records = co_await rt.list_context(ctx);
      say(self, std::string("  ") + ctx + ":");
      for (const auto& rec : records.value()) {
        std::string status;
        if (rec.type == naming::DescriptorType::kPrintJob) {
          static const char* kStatus[] = {"queued", "printing", "done"};
          status = std::string("  [") + kStatus[rec.context_id % 3] + "]";
        }
        say(self, "    " + rec.name + "  (" +
                      std::string(to_string(rec.type)) + ", " +
                      std::to_string(rec.size) + " bytes)" + status);
      }
    }

    say(self, "query the mailbox like any other object:");
    auto desc = co_await rt.query("[mail]cheriton@su-score.ARPA");
    say(self, "  " + desc.value().name + ": " +
                  std::to_string(desc.value().context_id) + " message(s), " +
                  std::to_string(desc.value().size) + " bytes, owner=" +
                  desc.value().owner);
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("distributed_office completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
