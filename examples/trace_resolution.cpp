// V-trace walkthrough: resolve a multi-hop name with tracing enabled,
// print the causally-ordered hop tree, export Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing), and read live counters back
// through the `[metrics]` context — observability served through the same
// uniform naming protocol it observes.
//
// Usage: trace_resolution [trace.json]
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/metrics_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace {

v::sim::Co<void> read_metric(v::svc::Rt& rt, const std::string& name) {
  using namespace v;
  auto opened = co_await rt.open(name, naming::wire::kOpenRead);
  if (!opened.ok()) {
    std::printf("  %-28s <unavailable: %s>\n", name.c_str(),
                std::string(to_string(opened.code())).c_str());
    co_return;
  }
  svc::File f = opened.take();
  auto bytes = co_await f.read_all();
  if (bytes.ok()) {
    std::string text(reinterpret_cast<const char*>(bytes.value().data()),
                     bytes.value().size());
    while (!text.empty() && text.back() == '\n') text.pop_back();
    std::printf("  %-28s %s\n", name.c_str(), text.c_str());
  }
  (void)co_await f.close();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace v;
  const std::string out_path = argc > 1 ? argv[1] : "trace.json";

  ipc::Domain dom;
  dom.tracer().enable();  // no-op shell when built with -DV_TRACE=OFF

  auto& ws = dom.add_host("ws-cheriton");

  // A chain of file servers joined by "next" links: resolving
  // next/next/next/payload.dat crosses three server boundaries, each one a
  // Forward of the partially-interpreted request (paper section 5.4).
  constexpr int kHops = 3;
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
  for (int i = 0; i <= kHops; ++i) {
    auto& host = dom.add_host("fs" + std::to_string(i));
    chain.push_back(std::make_unique<servers::FileServer>(
        "fs" + std::to_string(i), servers::DiskModel::kMemory, false));
    pids.push_back(host.spawn("fs" + std::to_string(i),
                              [srv = chain.back().get()](ipc::Process p) {
                                return srv->run(p);
                              }));
  }
  chain.back()->put_file("payload.dat", "end of the chain");
  for (int i = 0; i < kHops; ++i) {
    chain[static_cast<std::size_t>(i)]->put_link(
        "next",
        {pids[static_cast<std::size_t>(i) + 1], naming::kDefaultContext});
  }

  // The user's prefixes: [chain] = first server, [metrics] = the domain
  // metrics registry mounted as an ordinary CSNH context.
  servers::MetricsServer metrics_srv;
  const auto metrics_pid =
      ws.spawn("metrics", [&](ipc::Process p) { return metrics_srv.run(p); });
  servers::ContextPrefixServer prefixes("tracer-demo");
  prefixes.define("chain", {.target = {pids[0], naming::kDefaultContext}});
  prefixes.define("metrics",
                  {.target = {metrics_pid, naming::kDefaultContext}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  ws.spawn("client", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(self,
                                       {pids[0], naming::kDefaultContext});
    std::printf("opening [chain]next/next/next/payload.dat "
                "(%d server boundaries)\n", kHops);
    auto opened = co_await rt.open("[chain]next/next/next/payload.dat",
                                   naming::wire::kOpenRead);
    if (opened.ok()) {
      svc::File f = opened.take();
      auto bytes = co_await f.read_all();
      if (bytes.ok()) {
        std::printf("  content: %.*s\n",
                    static_cast<int>(bytes.value().size()),
                    reinterpret_cast<const char*>(bytes.value().data()));
      }
      (void)co_await f.close();
    }

    std::printf("\nreading counters back through the [metrics] context:\n");
    co_await read_metric(rt, "[metrics]fs3/requests");
    co_await read_metric(rt, "[metrics]ipc/forwards");
    co_await read_metric(rt, "[metrics]lint/requests_checked");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }

#if V_TRACE_ENABLED
  // Render the richest trace (the multi-hop open) as an indented tree.
  std::map<std::uint64_t, int> spans_per_trace;
  for (const auto& span : dom.tracer().spans()) {
    ++spans_per_trace[span.trace_id];
  }
  std::uint64_t best = 0;
  int best_count = 0;
  for (const auto& [trace, count] : spans_per_trace) {
    if (count > best_count) {
      best = trace;
      best_count = count;
    }
  }
  std::printf("\nhop tree of the deepest trace (#%llu of %llu):\n%s",
              static_cast<unsigned long long>(best),
              static_cast<unsigned long long>(dom.tracer().trace_count()),
              dom.tracer().render_text(best).c_str());

  if (!dom.tracer().write_chrome_json(out_path)) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nChrome trace written to %s — open it in Perfetto "
              "(ui.perfetto.dev) or chrome://tracing\n", out_path.c_str());

  std::printf("\nevent-loop hotspots (dispatches, host wall time):\n");
  for (const auto& f : dom.top_fibers(5)) {
    std::printf("  %-20s pid=0x%08x %8llu dispatches %10.3f ms wall\n",
                f.name.c_str(), f.pid,
                static_cast<unsigned long long>(f.dispatches),
                static_cast<double>(f.wall_ns) / 1e6);
  }
#else
  std::printf("\n(built with -DV_TRACE=OFF: no trace or metrics recorded; "
              "%s not written)\n", out_path.c_str());
#endif
  std::printf("\ntrace_resolution completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
