// A diskless SUN workstation (paper section 3): all program loading and
// file access go over the network to file servers.  Reproduces the two
// section 3.1 workloads in one narrative:
//
//   * loading a 64 KB program with one bulk MoveTo (paper: 338 ms), via the
//     team server;
//   * reading a file sequentially from a DISK-model server at ~17 ms per
//     512 B page over a 15 ms/page disk (paper: 17.13 ms).
#include <cstdio>
#include <string>

#include "ipc/kernel.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "servers/team_server.hpp"
#include "svc/runtime.hpp"

namespace {
void say(v::ipc::Process& self, const std::string& text) {
  std::printf("[%8.2f ms] %s\n", v::sim::to_ms(self.now()), text.c_str());
}
}  // namespace

int main() {
  using namespace v;
  ipc::Domain dom;
  auto& ws = dom.add_host("diskless-sun");
  auto& fsh = dom.add_host("vax-fs");

  // Program images live in server MEMORY buffers (the paper's assumption
  // for the 338 ms figure); data files live behind the 15 ms/page disk.
  servers::FileServer programs("programs");  // DiskModel::kMemory
  programs.put_file("bin/editor", std::string(64 * 1024, 'E'));
  servers::FileServer diskfs("disk-fs", servers::DiskModel::kDisk,
                             /*register_service=*/false);
  diskfs.put_file("data/big.log", std::string(20 * 512, 'L'));

  const auto prog_pid = fsh.spawn("programs", [&](ipc::Process p) {
    return programs.run(p);
  });
  const auto disk_pid = fsh.spawn("disk-fs", [&](ipc::Process p) {
    return diskfs.run(p);
  });

  servers::ContextPrefixServer prefixes("user");
  prefixes.define("bin", {.target = {prog_pid,
                                     programs.context_of("bin")}});
  prefixes.define("data", {.target = {disk_pid,
                                      diskfs.context_of("data")}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  servers::TeamServer team({prog_pid, naming::kDefaultContext});
  const auto team_pid =
      ws.spawn("team", [&](ipc::Process p) { return team.run(p); });

  ws.spawn("boot", [&](ipc::Process self) -> sim::Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {prog_pid, naming::kDefaultContext});

    say(self, "loading [bin]editor (64 KB) via the team server...");
    const auto t0 = self.now();
    auto loaded = co_await servers::TeamServer::load_program(
        self, team_pid, "[bin]editor");
    const double load_ms = sim::to_ms(self.now() - t0);
    say(self, "  loaded program id " + std::to_string(loaded.value()) +
                  " in " + std::to_string(load_ms) +
                  " ms  (paper: 338 ms for the raw MoveTo)");

    say(self, "running programs (team server context directory):");
    rt.set_current({team_pid, naming::kDefaultContext});
    auto programs_running = co_await rt.list_context("");
    for (const auto& rec : programs_running.value()) {
      say(self, "  " + rec.name + "  " + std::to_string(rec.size) +
                    " bytes");
    }

    say(self, "streaming [data]big.log from the disk server...");
    auto opened =
        co_await rt.open("[data]big.log", naming::wire::kOpenRead);
    svc::File log = opened.take();
    std::vector<std::byte> page(512);
    // Warm the read-ahead pipeline, then measure the steady state.
    for (std::uint32_t b = 0; b < 2; ++b) {
      (void)co_await log.read_block(b, page);
    }
    const auto t1 = self.now();
    constexpr int kPages = 16;
    for (std::uint32_t b = 2; b < 2 + kPages; ++b) {
      (void)co_await log.read_block(b, page);
    }
    const double per_page = sim::to_ms(self.now() - t1) / kPages;
    (void)co_await log.close();
    say(self, "  steady-state " + std::to_string(per_page) +
                  " ms/page over a 15 ms/page disk  (paper: 17.13 ms)");

    say(self, "killing the program through the uniform remove operation");
    auto running = co_await rt.list_context("");
    for (const auto& rec : running.value()) {
      (void)co_await rt.remove(rec.name);
    }
    say(self, "done; the workstation never touched a local disk.");
  });

  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "FAILED: %s\n", dom.first_failure().c_str());
    return 1;
  }
  std::printf("diskless_workstation completed in %.2f simulated ms\n",
              sim::to_ms(dom.now()));
  return 0;
}
