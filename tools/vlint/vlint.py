#!/usr/bin/env python3
"""V-lint: static analysis for the V-naming tree's concurrency and protocol
invariants (DESIGN.md 4j).

Five rules, each with a seeded must-fail fixture under tools/vlint/fixtures/:

  gate-generation     Every V_GATED_MUTATION hook calls note_name_write() on
                      every path before returning success; every call site of
                      a gated hook bumps the context generation (or is itself
                      a gated hook, or carries a justified suppression).
                      Every mutation-hook override in src/servers/ +
                      src/naming/csnh_server.cpp must carry the annotation.
  suspend-under-gate  No co_await of a sim::WaitQueue wait or a kernel
                      send/receive while a mutation-gate guard is held
                      (between `co_await <gate>` and the guard's scope end).
                      V_GATED_MUTATION bodies run under the gate, so the same
                      ban applies to them; V_NO_SUSPEND bodies must contain
                      no co_await at all.
  coro-param-lifetime No reference, std::span, or string_view parameter of a
                      Co<T> coroutine may be used after the first suspension
                      point unless the function is annotated V_BORROWS_SPAN.
                      Capturing-lambda coroutines are flagged here too.
  hot-path-alloc      V_HOT_PATH bodies must not reach operator new (except
                      placement `::new (`), make_unique/make_shared,
                      std::function construction, or node-based container
                      mutation; project functions they call must themselves
                      be V_HOT_PATH or explicitly allowed.  Regions compiled
                      out of measurement builds (#if V_TRACE_ENABLED /
                      V_CHECKS_ENABLED / V_FAULT_ENABLED) are skipped.
  wire-format         The CSname header offsets/widths in src/msg/csname.hpp
                      match the PROTOCOL.md section-2 table (and the accessor
                      widths match the table's u8/u16/u32 column); every
                      ReplyCode enumerator is decoded by to_string(); the
                      protocol lint's kMaxReplyCode tracks the enum.

Engines: the primary engine is a self-contained C++ micro-parser (tokenizer,
brace tree, per-function mini-CFG), so the pass runs on a GCC-only host.
`--engine clang` selects a libclang (Python clang.cindex over
compile_commands.json) backend and is gated on that module being installed;
the annotations in src/common/annotate.hpp lower to [[clang::annotate]]
exactly so that backend can find them in the AST.

Suppressions: `// vlint: allow(<rule>): <reason>` on the finding's line or
the line above.  A reason is mandatory.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import bisect
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule ids
# --------------------------------------------------------------------------

RULE_GATE = "gate-generation"
RULE_SUSPEND = "suspend-under-gate"
RULE_CORO = "coro-param-lifetime"
RULE_HOT = "hot-path-alloc"
RULE_WIRE = "wire-format"
ALL_RULES = (RULE_GATE, RULE_SUSPEND, RULE_CORO, RULE_HOT, RULE_WIRE)

ANNOTATIONS = {"V_GATED_MUTATION", "V_HOT_PATH", "V_NO_SUSPEND",
               "V_BORROWS_SPAN"}

# Preprocessor conditions compiled out of the measurement builds: tokens on
# lines inside `#if <one of these>` are invisible to the hot-path rule.
COMPILED_OUT_MACROS = ("V_TRACE_ENABLED", "V_CHECKS_ENABLED",
                       "V_FAULT_ENABLED")

# The gated name-mutation hooks of naming::CsnhServer.  Every override in a
# server implementation file must be annotated V_GATED_MUTATION.
MUTATION_HOOKS = {
    "modify", "remove", "rename", "create_object", "make_context",
    "link_context", "add_context_name", "delete_context_name",
}

# Suspension constructs banned while a mutation gate is held: parking on a
# WaitQueue or entering the kernel send/receive path can deadlock the gate's
# FIFO (the waker may need the gate) and at minimum holds the gate across
# unbounded simulated time.
BANNED_UNDER_GATE = {"wait_on", "send", "send_to_group", "receive"}

# Reference-ish parameter types that are exempt from coro-param-lifetime:
# the kernel owns each ipc::Process for the whole lifetime of the fiber
# running it (kill-by-exception unwinds the frame before teardown), so
# `ipc::Process& self` is valid across every suspension by construction.
SAFE_REF_TYPES = {"Process"}

# Project functions the hot paths may call without carrying V_HOT_PATH
# themselves.  Keep this list short and justified.
HOT_ALLOWED_CALLS = {
    # compile-time/constexpr helpers: pure arithmetic on integers
    "mix",
}

NODE_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<|"
    r"\bstd\s*::\s*(?:forward_)?list\s*<|"
    r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\s*<")

NODE_MUTATORS = {
    "insert", "emplace", "emplace_hint", "emplace_back", "emplace_front",
    "erase", "push_back", "push_front", "pop_back", "pop_front", "clear",
    "splice", "merge", "extract", "try_emplace", "insert_or_assign",
    "resize", "assign",
}

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "co_return", "co_await", "co_yield", "break", "continue",
    "goto", "try", "catch", "throw", "new", "delete", "sizeof", "alignof",
    "decltype", "static_assert", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "using", "typedef", "template",
    "typename", "class", "struct", "enum", "union", "namespace", "public",
    "private", "protected", "friend", "virtual", "explicit", "inline",
    "constexpr", "consteval", "constinit", "static", "extern", "mutable",
    "operator", "this", "nullptr", "true", "false", "auto", "void", "bool",
    "char", "short", "int", "long", "float", "double", "unsigned", "signed",
    "const", "volatile", "noexcept", "override", "final", "requires",
    "concept", "co_await",
}

REJECT_LEAD = {"return", "co_return", "co_await", "co_yield", "throw", "=",
               "?", "new", "delete", "else", "case", "goto", ".", "->"}

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|0[xX][0-9a-fA-F']+|\d[\w.']*|::|->\*?|\+\+|--|<<=|>>=|"
    r"<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|"
    r"[-+*/%&|^!~<>=?:;,.(){}\[\]#]")

SUPPRESS_RE = re.compile(r"vlint:\s*allow\(([\w-]+)\)\s*:\s*\S")

IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def is_ident(t):
    return bool(IDENT_RE.match(t))


class Finding:
    __slots__ = ("rule", "path", "line", "msg")

    def __init__(self, rule, path, line, msg):
        self.rule, self.path, self.line, self.msg = rule, path, line, msg

    def format(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text, self.line = text, line


# --------------------------------------------------------------------------
# Source preparation: comment/string stripping, directives, gated regions
# --------------------------------------------------------------------------

def strip_comments_strings(src):
    """Blank comments, string and char literals (preserving newlines) and
    collect `// vlint: allow(rule): reason` suppressions per line."""
    out = []
    supp = {}
    i, n = 0, len(src)
    line = 1
    while i < n:
        c = src[i]
        if c == "\n":
            out.append(c)
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            if j < 0:
                j = n
            m = SUPPRESS_RE.search(src[i:j])
            if m:
                supp.setdefault(line, set()).add(m.group(1))
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            j = n if j < 0 else j + 2
            seg = src[i:j]
            m = SUPPRESS_RE.search(seg)
            if m:
                supp.setdefault(line, set()).add(m.group(1))
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            line += seg.count("\n")
            i = j
        elif c == '"':
            if (out and "".join(out[-1:]).endswith("R")) or \
                    (i > 0 and src[i - 1] == "R"):
                k = src.find("(", i)
                delim = src[i + 1:k]
                end = src.find(")" + delim + '"', k)
                end = n if end < 0 else end + len(delim) + 2
                seg = src[i:end]
                out.append("".join(ch if ch == "\n" else " " for ch in seg))
                line += seg.count("\n")
                i = end
            else:
                j = i + 1
                while j < n and src[j] != '"':
                    if src[j] == "\\":
                        j += 1
                    j += 1
                j = min(j + 1, n)
                out.append(" " * (j - i))
                i = j
        elif c == "'":
            j = i + 1
            while j < n and src[j] != "'":
                if src[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            # Keep digit separators (1'000) intact: a lone quote after a
            # digit is part of a numeric literal, not a char literal.
            if i > 0 and src[i - 1].isdigit():
                out.append(c)
                i += 1
            else:
                out.append(" " * (j - i))
                i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), supp


def process_directives(clean):
    """Blank preprocessor lines out of `clean` and compute the set of line
    numbers inside compiled-out-of-measurement regions."""
    lines = clean.split("\n")
    gated = set()
    stack = []  # (this_branch_gated, cond_mentions_macro, negated)
    out_lines = []
    in_continuation = False
    for idx, text in enumerate(lines):
        lineno = idx + 1
        stripped = text.lstrip()
        is_directive = in_continuation or stripped.startswith("#")
        if is_directive:
            in_continuation = text.rstrip().endswith("\\")
            if not in_continuation or stripped.startswith("#"):
                body = stripped.lstrip("#").strip()
                if body.startswith(("if ", "ifdef", "ifndef", "if(")):
                    mentions = any(m in body for m in COMPILED_OUT_MACROS)
                    negated = "!" in body.split("//")[0]
                    branch_gated = mentions and not negated
                    stack.append([branch_gated, mentions, negated])
                elif body.startswith(("elif", "else")) and stack:
                    top = stack[-1]
                    if body.startswith("else"):
                        top[0] = top[1] and top[2]
                    else:
                        mentions = any(m in body
                                       for m in COMPILED_OUT_MACROS)
                        negated = "!" in body
                        top[0] = mentions and not negated
                        top[1] = top[1] or mentions
                elif body.startswith("endif") and stack:
                    stack.pop()
            out_lines.append("")
            continue
        if any(level[0] for level in stack):
            gated.add(lineno)
        out_lines.append(text)
    return "\n".join(out_lines), gated


def tokenize(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    toks = []
    for m in TOKEN_RE.finditer(text):
        line = bisect.bisect_right(starts, m.start())
        toks.append(Tok(m.group(0), line))
    return toks


class ParsedFile:
    def __init__(self, path, src):
        self.path = path
        clean, self.supp = strip_comments_strings(src)
        clean, self.gated_lines = process_directives(clean)
        self.clean = clean
        self.toks = tokenize(clean)
        self.funcs = extract_functions(self)

    def suppressed(self, rule, line):
        return (rule in self.supp.get(line, ()) or
                rule in self.supp.get(line - 1, ()))


# --------------------------------------------------------------------------
# Function extraction
# --------------------------------------------------------------------------

class Func:
    __slots__ = ("pf", "name", "qual", "ann", "lead", "line",
                 "param_s", "param_e", "body_s", "body_e")

    def __init__(self, **kw):
        for k, v in kw.items():
            setattr(self, k, v)

    @property
    def is_coro(self):
        if "Co" not in self.lead:
            return False
        toks = self.pf.toks
        for i in range(self.body_s, self.body_e):
            if toks[i].text in ("co_await", "co_return", "co_yield"):
                return True
        return False


def match_forward(toks, i, open_t, close_t):
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


def _scan_ctor_init(toks, k):
    """Scan a constructor init list starting after ':'; return the index of
    the body '{' or None."""
    n = len(toks)
    depth = 0
    while k < n:
        t = toks[k].text
        if t in ("(", "["):
            depth += 1
        elif t in (")", "]"):
            depth -= 1
        elif t == "{" and depth == 0:
            prev = toks[k - 1].text
            if is_ident(prev) or prev == ">":
                k = match_forward(toks, k, "{", "}")
                if k is None:
                    return None
            else:
                return k
        elif t == ";":
            return None
        k += 1
    return None


def _try_function(pf, i):
    toks = pf.toks
    n = len(toks)
    j = i - 1
    if j < 0:
        return None
    tj = toks[j].text
    popen = i
    if tj == "operator":
        if i + 2 < n and toks[i + 1].text == ")" and toks[i + 2].text == "(":
            name, name_start, popen = "operator()", j, i + 2
        else:
            return None
    elif tj == "]" and j >= 2 and toks[j - 1].text == "[" and \
            toks[j - 2].text == "operator":
        name, name_start = "operator[]", j - 2
    elif is_ident(tj) and tj not in KEYWORDS:
        name, name_start = tj, j
        while name_start >= 2 and toks[name_start - 1].text == "::" and \
                is_ident(toks[name_start - 2].text):
            name_start -= 2
        if name_start >= 1 and toks[name_start - 1].text == "~":
            name_start -= 1
    elif not is_ident(tj) and j >= 1 and toks[j - 1].text == "operator":
        name, name_start = "operator" + tj, j - 1
    else:
        return None

    pclose = match_forward(toks, popen, "(", ")")
    if pclose is None:
        return None

    k = pclose + 1
    body_open = None
    while k < n:
        t = toks[k].text
        if t == "{":
            body_open = k
            break
        if t in (";", "}", "="):
            return None
        if t == ":":
            body_open = _scan_ctor_init(toks, k + 1)
            break
        if t == "(":
            k = match_forward(toks, k, "(", ")")
            if k is None:
                return None
            k += 1
            continue
        if is_ident(t) or t in ("const", "noexcept", "override", "final",
                                "&", "&&", "->", "::", "<", ">", ",", "*",
                                "[", "]", "requires", "mutable", "try"):
            k += 1
            continue
        return None
    if body_open is None:
        return None
    body_close = match_forward(toks, body_open, "{", "}")
    if body_close is None:
        return None

    lead = []
    s = name_start - 1
    while s >= 0:
        t = toks[s].text
        if t in (";", "{", "}", ":", "(", ",", "#"):
            break
        if t in REJECT_LEAD:
            return None
        lead.append(t)
        s -= 1
    lead.reverse()

    qual = "".join(toks[x].text for x in range(name_start, i)
                   ) if name != tj else name
    if name.startswith("operator"):
        qual = name
    else:
        qual = "".join(toks[x].text
                       for x in range(name_start, popen))
    ann = set(lead) & ANNOTATIONS
    return Func(pf=pf, name=name, qual=qual, ann=ann, lead=lead,
                line=toks[name_start].line, param_s=popen + 1,
                param_e=pclose, body_s=body_open + 1, body_e=body_close)


def extract_functions(pf):
    toks = pf.toks
    funcs = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text != "(":
            i += 1
            continue
        fn = _try_function(pf, i)
        if fn is not None:
            funcs.append(fn)
            i = fn.body_e + 1
        else:
            i += 1
    return funcs


# --------------------------------------------------------------------------
# Shared indexes
# --------------------------------------------------------------------------

class Index:
    def __init__(self, parsed_files):
        self.files = parsed_files
        self.by_name = {}
        for pf in parsed_files:
            for f in pf.funcs:
                self.by_name.setdefault(f.name, []).append(f)
        self.node_members = set()
        decl_re = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*(?:=[^;]*)?;")
        for pf in parsed_files:
            for m in NODE_CONTAINER_RE.finditer(pf.clean):
                close = _match_angle(pf.clean, pf.clean.find("<", m.start()))
                if close is None:
                    continue
                dm = decl_re.match(pf.clean, close)
                if dm:
                    self.node_members.add(dm.group(1))


def _match_angle(text, i):
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
        elif c == ";":
            return None
        i += 1
    return None


def load_failure_codes(reply_hpp_text):
    """All ReplyCode enumerators except kOk, plus the enumerator->value map."""
    m = re.search(r"enum\s+class\s+ReplyCode[^{]*\{(.*?)\}", reply_hpp_text,
                  re.S)
    codes = {}
    if m:
        block = re.sub(r"//[^\n]*", "", m.group(1))
        value = 0
        for em in re.finditer(r"(k\w+)\s*(?:=\s*(\d+))?", block):
            if em.group(2) is not None:
                value = int(em.group(2))
            codes[em.group(1)] = value
            value += 1
    return codes


# --------------------------------------------------------------------------
# Rule 1: gate-generation
# --------------------------------------------------------------------------

def _read_branch(toks, s, e):
    """Return (branch_start, branch_end, next_index) for an if/else branch
    starting at s: either a braced block or a single statement."""
    if s < e and toks[s].text == "{":
        close = match_forward(toks, s, "{", "}")
        if close is None:
            return s, e, e
        return s + 1, close, close + 1
    depth = 0
    i = s
    while i < e:
        t = toks[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return s, i + 1, i + 1
        i += 1
    return s, e, e


def rule_gate(index, failure_codes, findings):
    failure_names = {k for k in failure_codes if k != "kOk"}
    annotated_hooks = set()
    for pf in index.files:
        for f in pf.funcs:
            if "V_GATED_MUTATION" in f.ann:
                annotated_hooks.add(f.name)

    for pf in index.files:
        path = pf.path.replace(os.sep, "/")
        in_scope = ("/servers/" in path or "src/servers/" in path or
                    path.endswith("naming/csnh_server.cpp") or
                    "fixtures" in path)
        for f in pf.funcs:
            if (in_scope and f.name in MUTATION_HOOKS and "::" in f.qual and
                    "V_GATED_MUTATION" not in f.ann):
                if not pf.suppressed(RULE_GATE, f.line):
                    findings.append(Finding(
                        RULE_GATE, pf.path, f.line,
                        f"mutation hook '{f.qual}' is not annotated "
                        "V_GATED_MUTATION"))
            if "V_GATED_MUTATION" in f.ann:
                _gate_walk(pf, f, failure_names, findings)

    # Call-site check: whoever invokes a gated hook owns the generation bump
    # on its success path (or is itself a gated hook delegating).
    for pf in index.files:
        for g in pf.funcs:
            toks = pf.toks
            has_bump = any(toks[i].text == "bump_generation"
                           for i in range(g.body_s, g.body_e))
            for i in range(g.body_s, g.body_e - 1):
                t = toks[i].text
                if t not in annotated_hooks or toks[i + 1].text != "(":
                    continue
                if i > 0 and toks[i - 1].text in (".", "->", "::"):
                    continue
                if g.name == t:
                    continue
                if "V_GATED_MUTATION" in g.ann or has_bump:
                    continue
                if pf.suppressed(RULE_GATE, toks[i].line):
                    continue
                findings.append(Finding(
                    RULE_GATE, pf.path, toks[i].line,
                    f"call of gated mutation hook '{t}' in '{g.qual}', "
                    "which neither bumps the context generation nor is a "
                    "gated hook itself"))


def _gate_walk(pf, f, failure_names, findings):
    toks = pf.toks

    def is_potential_success(expr):
        if not expr:
            return True
        if "kOk" in expr:
            return True
        if any(t in failure_names for t in expr):
            return False
        return True

    def walk(s, e, noted):
        i = s
        while i < e:
            t = toks[i].text
            if t == "note_name_write":
                noted = True
                i += 1
                continue
            if t in ("co_return", "return"):
                j = i + 1
                depth = 0
                expr = []
                while j < e:
                    tj = toks[j].text
                    if tj in ("(", "[", "{"):
                        depth += 1
                    elif tj in (")", "]", "}"):
                        depth -= 1
                    elif tj == ";" and depth == 0:
                        break
                    expr.append(tj)
                    j += 1
                if not noted and is_potential_success(expr):
                    if not pf.suppressed(RULE_GATE, toks[i].line):
                        findings.append(Finding(
                            RULE_GATE, pf.path, toks[i].line,
                            f"'{f.qual}' can return success without having "
                            "called note_name_write on this path"))
                i = j + 1
                continue
            if t == "if" and i + 1 < e and toks[i + 1].text == "(":
                cclose = match_forward(toks, i + 1, "(", ")")
                if cclose is None:
                    i += 1
                    continue
                b1s, b1e, nxt = _read_branch(toks, cclose + 1, e)
                noted1 = walk(b1s, b1e, noted)
                if nxt < e and toks[nxt].text == "else":
                    b2s, b2e, nxt2 = _read_branch(toks, nxt + 1, e)
                    noted2 = walk(b2s, b2e, noted)
                    noted = noted1 and noted2
                    i = nxt2
                else:
                    i = nxt
                continue
            if t in ("for", "while") and i + 1 < e and \
                    toks[i + 1].text == "(":
                cclose = match_forward(toks, i + 1, "(", ")")
                if cclose is None:
                    i += 1
                    continue
                bs, be, nxt = _read_branch(toks, cclose + 1, e)
                walk(bs, be, noted)
                i = nxt
                continue
            if t == "{":
                close = match_forward(toks, i, "{", "}")
                if close is None:
                    i += 1
                    continue
                noted = walk(i + 1, close, noted)
                i = close + 1
                continue
            i += 1
        return noted

    walk(f.body_s, f.body_e, False)


# --------------------------------------------------------------------------
# Rule 2: suspend-under-gate
# --------------------------------------------------------------------------

def _statement_end(toks, i, e):
    depth = 0
    while i < e:
        t = toks[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return i
        i += 1
    return e


def rule_suspend(index, findings):
    for pf in index.files:
        toks = pf.toks
        for f in pf.funcs:
            if "V_NO_SUSPEND" in f.ann:
                for i in range(f.body_s, f.body_e):
                    if toks[i].text == "co_await":
                        if not pf.suppressed(RULE_SUSPEND, toks[i].line):
                            findings.append(Finding(
                                RULE_SUSPEND, pf.path, toks[i].line,
                                f"suspension point in V_NO_SUSPEND "
                                f"function '{f.qual}'"))
            # Gate guards held in this body: live from `co_await <gate>` to
            # the end of the guard's declaration scope.
            live = []
            brace_stack = []
            gates = {}  # var name -> decl scope end
            for i in range(f.body_s, f.body_e):
                t = toks[i].text
                if t == "{":
                    close = match_forward(toks, i, "{", "}")
                    brace_stack.append(close if close is not None
                                       else f.body_e)
                elif t == "}":
                    if brace_stack:
                        brace_stack.pop()
                elif t == "GateLock" and i + 1 < f.body_e and \
                        is_ident(toks[i + 1].text):
                    scope_end = brace_stack[-1] if brace_stack else f.body_e
                    gates[toks[i + 1].text] = scope_end
                elif t == "co_await" and i + 1 < f.body_e and \
                        toks[i + 1].text in gates:
                    live.append((i, gates[toks[i + 1].text]))
            under_gate_whole_body = "V_GATED_MUTATION" in f.ann
            for i in range(f.body_s, f.body_e):
                if toks[i].text != "co_await":
                    continue
                in_gate = under_gate_whole_body or any(
                    a < i < b for a, b in live)
                if not in_gate:
                    continue
                end = _statement_end(toks, i, f.body_e)
                for j in range(i + 1, end):
                    if toks[j].text in BANNED_UNDER_GATE and \
                            j + 1 < f.body_e and toks[j + 1].text == "(":
                        if not pf.suppressed(RULE_SUSPEND, toks[j].line):
                            findings.append(Finding(
                                RULE_SUSPEND, pf.path, toks[j].line,
                                f"co_await of '{toks[j].text}' while a "
                                f"mutation gate is held in '{f.qual}'"))
                        break


# --------------------------------------------------------------------------
# Rule 3: coro-param-lifetime
# --------------------------------------------------------------------------

def _split_params(toks, s, e):
    params = []
    depth = 0
    cur = []
    for i in range(s, e):
        t = toks[i].text
        if t in ("(", "[", "{", "<"):
            depth += 1
        elif t in (")", "]", "}", ">"):
            depth -= 1
        elif t == "," and depth == 0:
            params.append(cur)
            cur = []
            continue
        cur.append(t)
    if cur:
        params.append(cur)
    return params


def _risky_param(tokens):
    """Return the parameter name if the type is a reference, span, or
    string_view; None otherwise (or if the parameter is unnamed/safe)."""
    if not tokens:
        return None
    if any(t in SAFE_REF_TYPES for t in tokens):
        return None
    risky = ("&" in tokens or "&&" in tokens or "span" in tokens or
             "string_view" in tokens)
    if not risky:
        return None
    # Drop a default argument, then the name is the trailing identifier.
    if "=" in tokens:
        tokens = tokens[:tokens.index("=")]
    if tokens and is_ident(tokens[-1]) and tokens[-1] not in KEYWORDS:
        return tokens[-1]
    return None


def rule_coro(index, findings):
    for pf in index.files:
        toks = pf.toks
        for f in pf.funcs:
            _lambda_coros(pf, f, findings)
            if not f.is_coro or "V_BORROWS_SPAN" in f.ann:
                continue
            first = None
            for i in range(f.body_s, f.body_e):
                if toks[i].text in ("co_await", "co_yield"):
                    first = i
                    break
            if first is None:
                continue
            boundary = _statement_end(toks, first, f.body_e)
            # If the first suspension is inside a loop, the loop header is
            # the boundary: iteration 2 uses anything in the loop after a
            # suspension.
            boundary = min(boundary, _enclosing_loop_start(toks, f, first))
            names = [n for n in
                     (_risky_param(p) for p in
                      _split_params(toks, f.param_s, f.param_e))
                     if n is not None]
            for name in names:
                for i in range(boundary, f.body_e):
                    if toks[i].text == name:
                        if not pf.suppressed(RULE_CORO, toks[i].line):
                            findings.append(Finding(
                                RULE_CORO, pf.path, toks[i].line,
                                f"borrowed parameter '{name}' of coroutine "
                                f"'{f.qual}' used after a suspension point "
                                "(annotate V_BORROWS_SPAN if the caller "
                                "guarantees the referent outlives every "
                                "co_await)"))
                        break


def _enclosing_loop_start(toks, f, pos):
    best = f.body_e
    i = f.body_s
    while i < pos:
        t = toks[i].text
        if t in ("for", "while", "do"):
            kw = i
            if t == "do":
                body = i + 1
            else:
                if i + 1 >= f.body_e or toks[i + 1].text != "(":
                    i += 1
                    continue
                cclose = match_forward(toks, i + 1, "(", ")")
                if cclose is None:
                    i += 1
                    continue
                body = cclose + 1
            bs, be, _ = _read_branch(toks, body, f.body_e)
            if bs <= pos < be:
                best = min(best, kw)
                i = bs
                continue
            i = be
            continue
        i += 1
    return best


LAMBDA_START_PREV = {"(", ",", "=", "return", ";", "{", "}", "co_return",
                     "co_await", "&&", "||", "?", ":"}


def _lambda_coros(pf, f, findings):
    toks = pf.toks
    i = f.body_s
    while i < f.body_e:
        if toks[i].text != "[":
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else ";"
        if prev not in LAMBDA_START_PREV:
            i += 1
            continue
        close = match_forward(toks, i, "[", "]")
        if close is None or close == i + 1:
            i += 1
            continue
        if toks[i + 1].text == "[":  # [[attribute]]
            i = close + 1
            continue
        # captures are non-empty; find the lambda body brace
        k = close + 1
        if k < f.body_e and toks[k].text == "(":
            k = match_forward(toks, k, "(", ")")
            if k is None:
                i = close + 1
                continue
            k += 1
        depth = 0
        body_open = None
        while k < f.body_e:
            t = toks[k].text
            if t == "{" and depth == 0:
                body_open = k
                break
            if t in ("(", "<"):
                depth += 1
            elif t in (")", ">"):
                depth -= 1
            elif t in (";", ","):
                break
            k += 1
        if body_open is None:
            i = close + 1
            continue
        body_close = match_forward(toks, body_open, "{", "}")
        if body_close is None:
            i = close + 1
            continue
        for j in range(body_open + 1, body_close):
            if toks[j].text in ("co_await", "co_return", "co_yield"):
                if not pf.suppressed(RULE_CORO, toks[i].line):
                    findings.append(Finding(
                        RULE_CORO, pf.path, toks[i].line,
                        f"capturing lambda in '{f.qual}' is a coroutine: "
                        "captures die with the temporary closure at the "
                        "first suspension"))
                break
        i = body_close + 1


# --------------------------------------------------------------------------
# Rule 4: hot-path-alloc
# --------------------------------------------------------------------------

def rule_hot(index, findings):
    hot_names = {f.name for pf in index.files for f in pf.funcs
                 if "V_HOT_PATH" in f.ann}
    for pf in index.files:
        toks = pf.toks
        for f in pf.funcs:
            if "V_HOT_PATH" not in f.ann:
                continue
            for i in range(f.body_s, f.body_e):
                tok = toks[i]
                if tok.line in pf.gated_lines:
                    continue
                t = tok.text
                nxt = toks[i + 1].text if i + 1 < f.body_e else ""
                prev = toks[i - 1].text if i > f.body_s else ""

                def flag(msg, line=None):
                    line = line if line is not None else tok.line
                    if not pf.suppressed(RULE_HOT, line):
                        findings.append(Finding(RULE_HOT, pf.path, line,
                                                msg + f" in V_HOT_PATH "
                                                f"'{f.qual}'"))

                if t == "new":
                    if not (prev == "::" and nxt == "("):
                        flag("operator new")
                    continue
                if t in ("make_unique", "make_shared") and nxt in ("<", "("):
                    flag(f"std::{t} allocation")
                    continue
                if t == "function" and prev == "::" and \
                        i >= 2 and toks[i - 2].text == "std":
                    flag("std::function construction")
                    continue
                if t in index.node_members:
                    if nxt == "[":
                        flag(f"node-based container mutation "
                             f"('{t}[...]')")
                        continue
                    if nxt in (".", "->") and i + 2 < f.body_e and \
                            toks[i + 2].text in NODE_MUTATORS and \
                            i + 3 < f.body_e and toks[i + 3].text == "(":
                        flag(f"node-based container mutation "
                             f"('{t}.{toks[i + 2].text}')")
                        continue
                if (is_ident(t) and t not in KEYWORDS and nxt == "(" and
                        prev not in (".", "->") and t in index.by_name and
                        t != f.name and t not in HOT_ALLOWED_CALLS and
                        t not in hot_names):
                    flag(f"call of project function '{t}' which is not "
                         "V_HOT_PATH")


# --------------------------------------------------------------------------
# Rule 5: wire-format
# --------------------------------------------------------------------------

PROTOCOL_FIELD_TO_CONST = {
    "request code": "kOffCode",
    "name index": "kOffNameIndex",
    "name length": "kOffNameLength",
    "mode": "kOffMode",
    "forward count": "kOffForwardCount",
    "context id": "kOffContextId",
    "expected generation": "kOffExpectedGen",
    "csname flags": "kOffCsFlags",
}

SIZE_BYTES = {"u8": 1, "u16": 2, "u32": 4}


def rule_wire(paths, findings):
    """paths: dict with optional keys protocol, csname, reply_hpp,
    reply_cpp, lint_hpp, lint_cpp mapping to file paths."""

    def read(key):
        p = paths.get(key)
        if p and os.path.isfile(p):
            with open(p, encoding="utf-8", errors="replace") as fh:
                return p, fh.read()
        return None, None

    proto_path, proto = read("protocol")
    cs_path, cs = read("csname")
    if proto and cs:
        doc = {}
        row_re = re.compile(
            r"^\|\s*(\d+)(?:\s*[–-]\s*\d+)?\s*\|\s*(u8|u16|u32|—|-)\s*\|"
            r"\s*(.+?)\s*\|\s*$", re.M)
        for m in row_re.finditer(proto):
            field = re.split(r"\s+[—–-]\s+", m.group(3))[0].strip().lower()
            if field in PROTOCOL_FIELD_TO_CONST:
                doc[PROTOCOL_FIELD_TO_CONST[field]] = (
                    int(m.group(1)), SIZE_BYTES.get(m.group(2)))
        consts = {m.group(1): (int(m.group(2)), m.start())
                  for m in re.finditer(
                      r"constexpr\s+std::size_t\s+(kOff\w+)\s*=\s*(\d+)",
                      cs)}
        widths = {}
        for m in re.finditer(r"\bu16\s*\(\s*(kOff\w+)|"
                             r"\bset_u16\s*\(\s*(kOff\w+)", cs):
            widths.setdefault(m.group(1) or m.group(2), set()).add(2)
        for m in re.finditer(r"\bu32\s*\(\s*(kOff\w+)|"
                             r"\bset_u32\s*\(\s*(kOff\w+)", cs):
            widths.setdefault(m.group(1) or m.group(2), set()).add(4)
        for m in re.finditer(r"raw\s*\(\s*\)\s*\[\s*(kOff\w+)\s*\]", cs):
            widths.setdefault(m.group(1), set()).add(1)
        for const, (off, size) in doc.items():
            if const not in consts:
                findings.append(Finding(
                    RULE_WIRE, cs_path, 1,
                    f"PROTOCOL.md documents {const} at offset {off} but "
                    "the constant is not defined"))
                continue
            have, pos = consts[const]
            line = cs.count("\n", 0, pos) + 1
            if have != off:
                findings.append(Finding(
                    RULE_WIRE, cs_path, line,
                    f"{const} = {have} but PROTOCOL.md documents offset "
                    f"{off}"))
            used = widths.get(const)
            if size and used and used != {size}:
                findings.append(Finding(
                    RULE_WIRE, cs_path, line,
                    f"{const} accessed with width(s) "
                    f"{sorted(used)} but PROTOCOL.md documents "
                    f"{size} byte(s)"))

    rh_path, rh = read("reply_hpp")
    rc_path, rc = read("reply_cpp")
    codes = load_failure_codes(rh) if rh else {}
    if codes and rc:
        for code in codes:
            if not re.search(r"case\s+ReplyCode\s*::\s*" + code + r"\b",
                             rc):
                findings.append(Finding(
                    RULE_WIRE, rc_path, 1,
                    f"ReplyCode::{code} has no case in the to_string "
                    "decoder"))
    lh_path, lh = read("lint_hpp")
    lc_path, lc = read("lint_cpp")
    max_code = max(codes, key=lambda k: codes[k]) if codes else None
    if codes and lh:
        m = re.search(r"kMaxReplyCode\s*=\s*static_cast<[^>]*>\s*"
                      r"\(\s*v?\s*(?:::)?\s*ReplyCode::(k\w+)\s*\)", lh)
        if m and m.group(1) != max_code:
            findings.append(Finding(
                RULE_WIRE, lh_path, lh.count("\n", 0, m.start()) + 1,
                f"kMaxReplyCode is ReplyCode::{m.group(1)} but the highest "
                f"enumerator is ReplyCode::{max_code}"))
    if codes and lc:
        m = re.search(r"static_assert\s*\(\s*kMaxReplyCode\s*==\s*(\d+)",
                      lc)
        if m and int(m.group(1)) != max(codes.values()):
            findings.append(Finding(
                RULE_WIRE, lc_path, lc.count("\n", 0, m.start()) + 1,
                f"protocol lint pins kMaxReplyCode == {m.group(1)} but the "
                f"highest ReplyCode value is {max(codes.values())}"))


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

def collect_sources(root, compdb=None):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                files.append(os.path.join(dirpath, fn))
    if compdb:
        import json
        with open(compdb, encoding="utf-8") as fh:
            entries = json.load(fh)
        tu = {os.path.realpath(e["file"]) for e in entries}
        files = [f for f in files
                 if f.endswith((".hpp", ".h")) or os.path.realpath(f) in tu]
    return files


def parse_files(paths):
    parsed = []
    for p in paths:
        with open(p, encoding="utf-8", errors="replace") as fh:
            parsed.append(ParsedFile(p, fh.read()))
    return parsed


def analyze(cpp_paths, wire_paths, root="."):
    findings = []
    parsed = parse_files(cpp_paths)
    index = Index(parsed)
    reply_hpp = wire_paths.get("reply_hpp")
    failure_codes = {}
    if reply_hpp and os.path.isfile(reply_hpp):
        with open(reply_hpp, encoding="utf-8") as fh:
            failure_codes = load_failure_codes(fh.read())
    rule_gate(index, failure_codes, findings)
    rule_suspend(index, findings)
    rule_coro(index, findings)
    rule_hot(index, findings)
    rule_wire(wire_paths, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def tree_wire_paths(root):
    return {
        "protocol": os.path.join(root, "docs/PROTOCOL.md"),
        "csname": os.path.join(root, "src/msg/csname.hpp"),
        "reply_hpp": os.path.join(root, "src/common/reply_codes.hpp"),
        "reply_cpp": os.path.join(root, "src/common/reply_codes.cpp"),
        "lint_hpp": os.path.join(root, "src/chk/protocol_lint.hpp"),
        "lint_cpp": os.path.join(root, "src/chk/protocol_lint.cpp"),
    }


def fixture_wire_paths(fix_dir):
    names = {
        "protocol": "PROTOCOL.md", "csname": "csname.hpp",
        "reply_hpp": "reply_codes.hpp", "reply_cpp": "reply_codes.cpp",
        "lint_hpp": "protocol_lint.hpp", "lint_cpp": "protocol_lint.cpp",
    }
    return {k: os.path.join(fix_dir, v) for k, v in names.items()
            if os.path.isfile(os.path.join(fix_dir, v))}


def analyze_fixture(fix_dir):
    wire = fixture_wire_paths(fix_dir)
    skip = {os.path.basename(p) for p in wire.values()}
    cpp = [os.path.join(fix_dir, fn) for fn in sorted(os.listdir(fix_dir))
           if fn.endswith((".cpp", ".hpp")) and fn not in skip]
    return analyze(cpp, wire)


def check_fixtures(fixtures_root):
    ok = True
    dirs = sorted(d for d in os.listdir(fixtures_root)
                  if os.path.isdir(os.path.join(fixtures_root, d)))
    if not dirs:
        print("vlint: no fixtures found", file=sys.stderr)
        return False
    for d in dirs:
        fix_dir = os.path.join(fixtures_root, d)
        expect_path = os.path.join(fix_dir, "EXPECT")
        if not os.path.isfile(expect_path):
            print(f"vlint: fixture {d}: missing EXPECT file",
                  file=sys.stderr)
            ok = False
            continue
        with open(expect_path, encoding="utf-8") as fh:
            expected = {ln.strip() for ln in fh
                        if ln.strip() and not ln.startswith("#")}
        findings = analyze_fixture(fix_dir)
        got = {f.rule for f in findings}
        missing = expected - got
        if missing:
            print(f"FAIL fixture {d}: expected rule(s) "
                  f"{sorted(missing)} did not fire; findings:")
            for f in findings:
                print("  " + f.format())
            ok = False
        else:
            print(f"ok   fixture {d}: {sorted(expected)} fired "
                  f"({len(findings)} finding(s))")
    return ok


def main(argv=None):
    ap = argparse.ArgumentParser(prog="vlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compdb",
                    help="compile_commands.json: restrict .cpp scanning to "
                         "its translation units")
    ap.add_argument("--engine", choices=("textual", "clang"),
                    default="textual",
                    help="'clang' requires the Python clang.cindex module "
                         "(libclang); 'textual' is self-contained")
    ap.add_argument("--fixture", metavar="DIR",
                    help="analyze one fixture directory instead of the tree")
    ap.add_argument("--check-fixtures", action="store_true",
                    help="assert every seeded fixture fails with its "
                         "expected rule")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    if args.engine == "clang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("vlint: --engine clang requires the Python clang.cindex "
                  "module (libclang); it is not installed on this host. "
                  "The textual engine implements the same rules: rerun "
                  "with --engine textual.", file=sys.stderr)
            return 2
        print("vlint: the libclang backend is gated but not yet wired; "
              "use --engine textual.", file=sys.stderr)
        return 2

    here = os.path.dirname(os.path.abspath(__file__))
    if args.check_fixtures:
        return 0 if check_fixtures(os.path.join(here, "fixtures")) else 1

    if args.fixture:
        findings = analyze_fixture(args.fixture)
    else:
        cpp = collect_sources(args.root, args.compdb)
        findings = analyze(cpp, tree_wire_paths(args.root), args.root)

    for f in findings:
        print(f.format())
    if findings:
        print(f"vlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("vlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
