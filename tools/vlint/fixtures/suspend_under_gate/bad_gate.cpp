// Seeded suspend-under-gate violations.
//
// 1. BadServer::gated_rename co_awaits a kernel send while the GateLock
//    guard is live: the worker holds the per-(context,leaf) mutation gate
//    across an unbounded remote transaction, serializing every other
//    mutation on the pair behind a network round trip.
// 2. BadServer::take_work is annotated V_NO_SUSPEND but contains a
//    suspension point.
#include "common/annotate.hpp"

namespace v::servers {

sim::Co<ReplyCode> BadServer::gated_rename(ipc::Process& self, ContextId ctx,
                                           std::string_view leaf,
                                           std::string_view new_name) {
  GateLock gate(*this, self, ctx, leaf);
  co_await gate;
  // Holding the gate across a Send: banned.
  const Message ack = co_await self.send(make_probe(new_name), peer_);
  if (ack.reply_code() != ReplyCode::kOk) co_return ack.reply_code();
  note_name_write(self, ctx, leaf);
  co_return ReplyCode::kOk;
}

V_NO_SUSPEND
sim::Co<ipc::Envelope> BadServer::take_work(ipc::Process& self) {
  while (work_queue_.empty()) {
    co_await self.wait_on(work_ready_);
  }
  ipc::Envelope env = std::move(work_queue_.front());
  work_queue_.pop_front();
  co_return env;
}

}  // namespace v::servers
