// Seeded coro-param-lifetime violations.
//
// 1. Client::announce takes the name by string_view and uses it after the
//    first suspension point without a V_BORROWS_SPAN annotation: the
//    caller's temporary may be gone by the time the coroutine resumes.
// 2. Client::flush_later builds a CAPTURING lambda that is itself a
//    coroutine: the closure object is a temporary that dies at the first
//    suspension, taking its captures with it.
#include "common/annotate.hpp"

namespace v::svc {

sim::Co<void> Client::announce(ipc::Process& self, std::string_view name,
                               std::span<const std::byte> payload) {
  co_await self.compute(self.params().send_build);
  Message request;
  request.set_code(RequestCode::kModifyName);
  msg::cs::set_name_length(request,
                           static_cast<std::uint16_t>(name.size()));
  ipc::Segments segments;
  segments.read = payload;
  co_await self.send(request, server_, segments);
}

void Client::flush_later(sim::EventLoop& loop, std::string text) {
  loop.schedule_after(10, [this, text]() -> sim::Co<void> {
    co_await self_.compute(1);
    buffer_.append(text);
  });
}

}  // namespace v::svc
