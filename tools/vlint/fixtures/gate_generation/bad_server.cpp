// Seeded gate-generation violations.
//
// 1. BadServer::modify is annotated V_GATED_MUTATION but has a success
//    path (the else arm) that never calls note_name_write.
// 2. BadServer::remove is a mutation hook override that is not annotated
//    V_GATED_MUTATION at all.
// 3. BadServer::serve calls the gated hook modify() without bumping the
//    context generation and without being a gated hook itself.
#include "common/annotate.hpp"

namespace v::servers {

V_GATED_MUTATION
sim::Co<ReplyCode> BadServer::modify(ipc::Process& self, ContextId ctx,
                                     std::string_view leaf,
                                     const ObjectDescriptor& desc) {
  if (!table_.contains(leaf)) co_return ReplyCode::kNotFound;
  if (desc.type == DescriptorType::kFile) {
    note_name_write(self, ctx, leaf);
    table_[std::string(leaf)] = desc;
    co_return ReplyCode::kOk;
  }
  table_[std::string(leaf)] = desc;
  co_return ReplyCode::kOk;  // success, but note_name_write was skipped
}

sim::Co<ReplyCode> BadServer::remove(ipc::Process& self, ContextId ctx,
                                     std::string_view leaf) {
  table_.erase(std::string(leaf));
  co_return ReplyCode::kOk;
}

sim::Co<void> BadServer::serve(ipc::Process& self, ContextId ctx,
                               std::string_view leaf,
                               const ObjectDescriptor& desc) {
  const auto code = co_await modify(self, ctx, leaf, desc);
  self.reply(msg::make_reply(code), self.pid());
  co_return;
}

}  // namespace v::servers
