// Fixture lint pin: the static_assert pins the pre-kQuotaFull max value.
#include "protocol_lint.hpp"

namespace v::chk {

static_assert(kMaxReplyCode == 3,
              "ReplyCode grew: update the protocol lint decoder");

}  // namespace v::chk
