// Seeded wire-format violations against the fixture PROTOCOL.md:
// 1. kOffContextId is defined at offset 10, but the table documents 8.
// 2. expected generation is accessed with u16 accessors, but the table
//    documents a u32 field.
#pragma once

namespace v::msg::cs {

inline constexpr std::size_t kOffCode = 0;
inline constexpr std::size_t kOffNameIndex = 2;
inline constexpr std::size_t kOffNameLength = 4;
inline constexpr std::size_t kOffMode = 6;
inline constexpr std::size_t kOffContextId = 10;  // drifted from the doc
inline constexpr std::size_t kOffExpectedGen = 24;
inline constexpr std::size_t kOffCsFlags = 28;

inline std::uint16_t name_index(const Message& m) noexcept {
  return m.u16(kOffNameIndex);
}
inline std::uint32_t context_id(const Message& m) noexcept {
  return m.u32(kOffContextId);
}
inline std::uint32_t expected_generation(const Message& m) noexcept {
  return m.u16(kOffExpectedGen);  // wrong width: doc says u32
}
inline void set_expected_generation(Message& m, std::uint32_t gen) noexcept {
  m.set_u16(kOffExpectedGen, static_cast<std::uint16_t>(gen));
}
inline std::uint8_t cs_flags(const Message& m) noexcept {
  return static_cast<std::uint8_t>(m.raw()[kOffCsFlags]);
}

}  // namespace v::msg::cs
