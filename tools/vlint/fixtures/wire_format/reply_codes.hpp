// Fixture reply-code registry.  kQuotaFull is the seeded newcomer: it was
// added here but never taught to the decoder or the protocol lint pins.
#pragma once

namespace v {

enum class ReplyCode : std::uint16_t {
  kOk = 0,
  kNotFound = 1,
  kBadArgs = 2,
  kTimeout = 3,
  kQuotaFull = 7,  // new code: decoder and lint pins were not updated
};

}  // namespace v
