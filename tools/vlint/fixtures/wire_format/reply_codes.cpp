// Fixture decoder: missing the case for ReplyCode::kQuotaFull.
#include "reply_codes.hpp"

namespace v {

const char* to_string(ReplyCode code) {
  switch (code) {
    case ReplyCode::kOk: return "kOk";
    case ReplyCode::kNotFound: return "kNotFound";
    case ReplyCode::kBadArgs: return "kBadArgs";
    case ReplyCode::kTimeout: return "kTimeout";
  }
  return "unknown";
}

}  // namespace v
