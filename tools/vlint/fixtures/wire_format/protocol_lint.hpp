// Fixture lint pin: still names kTimeout as the max enumerator although
// kQuotaFull was added above it.
#pragma once

#include "reply_codes.hpp"

namespace v::chk {

inline constexpr std::uint16_t kMaxReplyCode =
    static_cast<std::uint16_t>(v::ReplyCode::kTimeout);

}  // namespace v::chk
