// Seeded hot-path-alloc violations.
//
// Loop::dispatch is annotated V_HOT_PATH but:
// 1. reaches operator new (a per-event heap allocation),
// 2. constructs a std::function (which heap-allocates any capture larger
//    than the libstdc++ small-object threshold),
// 3. mutates a node-based container member (per-insert node allocation),
// 4. calls a project function (cold_rebuild) that is not V_HOT_PATH.
#include "common/annotate.hpp"

namespace v::sim {

void Loop::cold_rebuild() {
  index_.clear();
  for (const auto& e : events_) index_.emplace(e.at, e.id);
}

V_HOT_PATH
void Loop::dispatch(Event& ev) {
  auto* shadow = new Event(ev);
  pending_by_time.insert({ev.at, shadow});
  std::function<void()> run = [shadow] { shadow->fire(); };
  run();
  cold_rebuild();
}

}  // namespace v::sim
