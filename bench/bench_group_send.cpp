// E9 (paper section 7, future work): service naming via multicast group
// Send versus the GetPid broadcast mechanism of section 4.2.
//
// "A near-term project is to replace the low-level service naming using
// GetPid and SetPid with a mechanism based on multicast Send.  Using this
// mechanism, a single context could be implemented transparently by a
// group of servers working in cooperation."
//
// We measure: resolving + using a service via (a) GetPid broadcast then
// direct send, (b) one multicast group send answered by the first member,
// and (c) a cached pid (the steady-state the paper recommends for file
// access).  Swept over the number of candidate server hosts.
#include <memory>

#include "bench_util.hpp"
#include "msg/message.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

constexpr ipc::GroupId kStorageGroup = 0x5701;

sim::Co<void> group_member(ipc::Process self) {
  self.join_group(kStorageGroup);
  for (;;) {
    auto env = co_await self.receive();
    self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E9", "service naming: GetPid broadcast vs multicast "
                        "group Send (section 7)");

  std::printf("  %-8s %22s %22s %18s\n", "servers", "GetPid+send (ms)",
              "group send (ms)", "cached pid (ms)");
  for (const int servers_n : {1, 2, 4, 8, 16}) {
    ipc::Domain dom;
    auto& ws = dom.add_host("ws1");
    std::vector<ipc::ProcessId> members;
    for (int i = 0; i < servers_n; ++i) {
      auto& host = dom.add_host("fs" + std::to_string(i));
      members.push_back(
          host.spawn("member" + std::to_string(i),
                     [](ipc::Process p) { return group_member(p); }));
    }

    double getpid_ms = 0, group_ms = 0, cached_ms = 0;
    const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                    -> Co<void> {
      // Register the LAST member as the service provider (worst case for
      // the deterministic broadcast scan).
      self.set_pid(ipc::ServiceId::kStorageServer, members.back(),
                   ipc::Scope::kBoth);
      co_await self.delay(sim::kMillisecond);  // let members join the group
      constexpr int kIters = 25;

      auto t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        const auto pid = co_await self.get_pid(
            ipc::ServiceId::kStorageServer, ipc::Scope::kBoth);
        (void)co_await self.send(msg::Message{}, pid);
      }
      getpid_ms = to_ms(self.now() - t0) / kIters;

      t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        (void)co_await self.send_to_group(msg::Message{}, kStorageGroup);
      }
      group_ms = to_ms(self.now() - t0) / kIters;

      const auto cached = members.back();
      t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        (void)co_await self.send(msg::Message{}, cached);
      }
      cached_ms = to_ms(self.now() - t0) / kIters;
    });
    if (!ok) return 1;
    std::printf("  %-8d %22.2f %22.2f %18.2f\n", servers_n, getpid_ms,
                group_ms, cached_ms);
  }
  // --- group-implemented contexts: replicated storage ----------------------
  bench::note("");
  bench::note("group-implemented context (section 7): open latency through");
  bench::note("a [repl] prefix bound to N read replicas (one local):");
  std::printf("  %-10s %18s %24s\n", "replicas", "open+close (ms)",
              "still OK with N-1 dead");
  for (const int replicas : {1, 2, 4, 8}) {
    ipc::Domain dom;
    auto& ws = dom.add_host("ws1");
    constexpr ipc::GroupId kRepl = 0x7777;
    std::vector<std::unique_ptr<servers::FileServer>> fleet;
    std::vector<ipc::Host*> fleet_hosts;
    for (int r = 0; r < replicas; ++r) {
      // First replica local to the client, the rest remote.
      auto& host = r == 0 ? ws : dom.add_host("r" + std::to_string(r));
      fleet.push_back(std::make_unique<servers::FileServer>(
          "repl" + std::to_string(r), servers::DiskModel::kMemory, false));
      fleet.back()->put_file("shared/doc", "replica bytes");
      fleet.back()->set_group(kRepl);
      host.spawn("repl" + std::to_string(r),
                 [srv = fleet.back().get()](ipc::Process p) {
                   return srv->run(p);
                 });
      if (r != 0) fleet_hosts.push_back(&host);
    }
    servers::ContextPrefixServer prefixes;
    servers::ContextPrefixServer::Entry entry;
    entry.group = kRepl;
    prefixes.define("repl", entry);
    ws.spawn("prefix-server",
             [&](ipc::Process p) { return prefixes.run(p); });

    double open_ms = 0;
    bool survived = true;
    const bool ok2 = bench::run_client(dom, ws, [&](ipc::Process self)
                                                    -> Co<void> {
      auto rt = co_await svc::Rt::attach(
          self, naming::ContextPair{ipc::ProcessId::invalid(),
                                    naming::kDefaultContext});
      co_await self.delay(sim::kMillisecond);
      constexpr int kIters = 20;
      const auto t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        auto opened =
            co_await rt.open("[repl]shared/doc", naming::wire::kOpenRead);
        if (opened.ok()) {
          svc::File f = opened.take();
          (void)co_await f.close();
        }
      }
      open_ms = sim::to_ms(self.now() - t0) / kIters;
      // Kill all remote replicas; the local one must still answer.
      for (auto* host : fleet_hosts) host->crash();
      auto opened =
          co_await rt.open("[repl]shared/doc", naming::wire::kOpenRead);
      survived = opened.ok();
      if (opened.ok()) {
        svc::File f = opened.take();
        (void)co_await f.close();
      }
    });
    if (!ok2) return 1;
    std::printf("  %-10d %18.2f %24s\n", replicas, open_ms,
                survived ? "yes" : "NO");
  }

  bench::note("");
  bench::note("shape: group send folds resolution INTO the request — one");
  bench::note("multicast replaces broadcast-query-then-send, and the first");
  bench::note("(fastest) member answers, so it also load-balances.  The");
  bench::note("cached-pid column is the paper's recommendation for");
  bench::note("high-rate use: bind at open time, send directly after.");
  return bench::finish(json_path);
}
