// E4 extension: the validated cached open path (DESIGN.md 4g,
// PROTOCOL.md 11).
//
// The paper's E4 table prices a remote Open at 3.70 ms in the current
// context and 7.69 ms through the context prefix server.  A client holding
// a generation-stamped binding for the directory part goes straight to the
// final server in ONE message transaction — so a warm cached open of a
// "[prefix]dir/leaf" name should cost what the paper charges for a direct
// remote open, while staying CORRECT: any name-space mutation since the
// binding was learned is refused with STALE_CONTEXT and transparently
// re-resolved (where the unvalidated section-2.2 cache returned wrong
// answers).
//
// Two tables:
//   1. warm-hit latency + message accounting against the E4 rows;
//   2. a reuse-ratio x mutation-rate sweep showing how the benefit decays
//      and what staleness costs when the name space churns underneath.
#include "bench_util.hpp"
#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

struct HitNumbers {
  double uncached_prefix_ms = 0;  ///< full resolution via prefix server
  double direct_remote_ms = 0;    ///< E4 baseline: current ctx, remote
  double warm_hit_ms = 0;         ///< cached one-hop open
  std::uint64_t warm_messages = 0;
  std::uint64_t warm_forwards = 0;
};

HitNumbers measure_warm_hit() {
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer remote_fs("remote");
  remote_fs.put_file("f.dat", "remote bytes");
  servers::ContextPrefixServer prefixes;
  const auto remote_pid =
      fs1.spawn("remote-fs", [&](ipc::Process p) { return remote_fs.run(p); });
  prefixes.define("r", {.target = {remote_pid, naming::kDefaultContext}});
  ws1.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  HitNumbers out;
  bench::run_client(dom, ws1, [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {remote_pid, naming::kDefaultContext});
    auto time_open_only = [&](std::string_view name) -> Co<double> {
      constexpr int kIters = 50;
      sim::SimDuration total = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto t0 = self.now();
        auto opened = co_await rt.open(name, naming::wire::kOpenRead);
        total += self.now() - t0;
        svc::File f = opened.take();
        (void)co_await f.close();
      }
      co_return to_ms(total) / kIters;
    };
    // Uncached rows, exactly as E4 measures them.
    out.uncached_prefix_ms = co_await time_open_only("[r]f.dat");
    out.direct_remote_ms = co_await time_open_only("f.dat");
    // Cached: one cold open learns the binding, then every open of the
    // prefixed name is a validated one-hop hit.
    svc::NameCache cache;
    rt.set_cache(&cache);
    {
      auto cold = co_await rt.open("[r]f.dat", naming::wire::kOpenRead);
      svc::File f = cold.take();
      (void)co_await f.close();
    }
    // Message accounting for a single warm open (close kept outside).
    const auto before = dom.stats();
    {
      auto warm = co_await rt.open("[r]f.dat", naming::wire::kOpenRead);
      const auto after = dom.stats();
      out.warm_messages = after.messages_sent - before.messages_sent;
      out.warm_forwards = after.forwards - before.forwards;
      svc::File f = warm.take();
      (void)co_await f.close();
    }
    out.warm_hit_ms = co_await time_open_only("[r]f.dat");
    rt.set_cache(nullptr);
  });
  return out;
}

struct SweepCell {
  double mean_open_ms = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale = 0;
  std::uint64_t fallbacks = 0;
  int wrong = 0;  ///< opens whose bytes contradicted the current name space
};

/// 64 opens spread round-robin over `dirs` directories on a remote server;
/// when `mutate_every` > 0, every such open is preceded by a CreateName in
/// the same directory — a gated mutation that advances the directory's
/// generation and invalidates any binding learned before it.
SweepCell measure_cell(int dirs, int mutate_every) {
  constexpr int kOpens = 64;
  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer fs("fs", servers::DiskModel::kMemory, false);
  for (int d = 0; d < dirs; ++d) {
    for (int f = 0; f < (kOpens + dirs - 1) / dirs; ++f) {
      fs.put_file("dir" + std::to_string(d) + "/f" + std::to_string(f) +
                      ".dat",
                  "x");
    }
  }
  const auto fs_pid =
      fs1.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  SweepCell cell;
  bench::run_client(dom, ws1, [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self,
               {ipc::ProcessId::invalid(), {fs_pid, naming::kDefaultContext}});
    svc::NameCache cache;
    rt.set_cache(&cache);
    sim::SimDuration open_total = 0;
    for (int i = 0; i < kOpens; ++i) {
      const int d = i % dirs;
      const std::string dir = "dir" + std::to_string(d);
      if (mutate_every > 0 && i > 0 && i % mutate_every == 0) {
        // The name space moves underneath the cache (untimed: this prices
        // the opens, not the churn).
        (void)co_await rt.create(dir + "/m" + std::to_string(i) + ".dat");
      }
      const std::string name =
          dir + "/f" + std::to_string(i / dirs) + ".dat";
      const auto t0 = self.now();
      auto opened = co_await rt.open(name, naming::wire::kOpenRead);
      open_total += self.now() - t0;
      if (!opened.ok()) {
        ++cell.wrong;
        continue;
      }
      svc::File file = opened.take();
      auto bytes = co_await file.read_bulk();
      (void)co_await file.close();
      if (!bytes.ok() || bytes.value().empty() ||
          static_cast<char>(bytes.value()[0]) != 'x') {
        ++cell.wrong;
      }
    }
    cell.mean_open_ms = to_ms(open_total) / kOpens;
    cell.hits = cache.hits();
    cell.misses = cache.misses();
    cell.stale = cache.stale();
    cell.fallbacks = cache.fallbacks();
    rt.set_cache(nullptr);
  });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const int repeats = bench::repeat_from_args(argc, argv);
  int rc = 0;

  bench::headline("E4-cached", "validated cached open (one-hop warm hits)");
  bench::run_info(0, "SUN 3 Mbit (default)");
  {
    const ipc::Domain probe;
    bench::obs_info(probe);
  }

  HitNumbers hit;
  const double host_ms =
      bench::median_host_ms(repeats, [&] { hit = measure_warm_hit(); });
  bench::row("uncached open via [prefix], server remote",
             hit.uncached_prefix_ms, 7.69);
  bench::row("direct open, current ctx remote (E4 row)", hit.direct_remote_ms,
             3.70);
  bench::row("cached warm hit on the [prefix] name", hit.warm_hit_ms, 3.70);
  bench::note("");
  bench::note("warm hit transport: " + std::to_string(hit.warm_messages) +
              " message transaction(s), " + std::to_string(hit.warm_forwards) +
              " forwards");
  if (hit.warm_messages != 1 || hit.warm_forwards != 0) {
    bench::note("FAILURE: a warm hit must be exactly one direct transaction");
    rc = 1;
  }
  const double vs_paper = 100.0 * (hit.warm_hit_ms - 3.70) / 3.70;
  if (vs_paper < -5.0 || vs_paper > 5.0) {
    bench::note("FAILURE: warm hit strays more than 5% from the paper's "
                "3.70 ms direct remote open");
    rc = 1;
  }
  std::printf("  host wall-clock per measurement: %.1f ms (median of %d)\n",
              host_ms, repeats);

  bench::headline("E4-cached-sweep", "reuse ratio x mutation rate (64 opens)");
  std::uint64_t hits = 0, misses = 0, stale = 0, fallbacks = 0;
  int wrong = 0;
  for (const int dirs : {1, 8, 64}) {
    for (const int mutate_every : {0, 8, 2}) {
      const SweepCell cell = measure_cell(dirs, mutate_every);
      const std::string label =
          std::to_string(dirs) + " dirs, " +
          (mutate_every == 0
               ? std::string("no mutation")
               : "mutate 1/" + std::to_string(mutate_every)) +
          " (" + std::to_string(cell.hits) + " hits, " +
          std::to_string(cell.stale) + " stale)";
      bench::row(label, cell.mean_open_ms);
      hits += cell.hits;
      misses += cell.misses;
      stale += cell.stale;
      fallbacks += cell.fallbacks;
      wrong += cell.wrong;
    }
  }
  bench::note("");
  bench::cache_stats(hits, misses, stale, fallbacks);
  if (wrong != 0) {
    bench::note("FAILURE: " + std::to_string(wrong) +
                " open(s) returned bytes that contradict the name space");
    rc = 1;
  } else {
    bench::note("every open returned current-name-space bytes: stale");
    bench::note("bindings were refused and re-resolved, never believed.");
  }
  return bench::finish(json_path, rc);
}
