// E6 / Figure 4 (paper section 5.8): the naming forest and cross-server
// pointers.  Measures name interpretation latency as a function of the
// forwarding chain length, and runs the ablation DESIGN.md calls out:
// server-to-server FORWARDING of partially-interpreted requests versus a
// client that iterates (MapContextName per server, then the final open).
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string metrics_path = bench::flag_value(argc, argv, "--metrics");
  const std::string trace_path = bench::flag_value(argc, argv, "--trace");
  bench::headline("E6 / Fig.4",
                  "cross-server name interpretation: forwarding vs client "
                  "iteration");

  constexpr int kMaxHops = 6;
  ipc::Domain dom;
  // V-trace: spans carry simulated time only, so tracing the run cannot
  // change any measured number.  (No-op shell with V_TRACE=OFF.)
  if (!trace_path.empty()) dom.tracer().enable();
  auto& ws = dom.add_host("ws1");
  // A chain of file servers, each holding a link to the next.
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
  for (int i = 0; i <= kMaxHops; ++i) {
    auto& host = dom.add_host("fs" + std::to_string(i));
    chain.push_back(std::make_unique<servers::FileServer>(
        "fs" + std::to_string(i), servers::DiskModel::kMemory, false));
    chain.back()->put_file("payload.dat", "end of the chain");
    pids.push_back(host.spawn("fs" + std::to_string(i),
                              [srv = chain.back().get()](ipc::Process p) {
                                return srv->run(p);
                              }));
  }
  for (int i = 0; i < kMaxHops; ++i) {
    chain[static_cast<std::size_t>(i)]->put_link(
        "next", {pids[static_cast<std::size_t>(i) + 1],
                 naming::kDefaultContext});
  }

  struct RowData {
    int hops;
    double forwarded_ms;
    double iterated_ms;
  };
  std::vector<RowData> rows;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {pids[0], naming::kDefaultContext}});
    for (int hops = 0; hops <= kMaxHops; ++hops) {
      std::string name;
      for (int i = 0; i < hops; ++i) name += "next/";
      name += "payload.dat";

      // (a) protocol forwarding: one request, servers hand it along.
      rt.set_current({pids[0], naming::kDefaultContext});
      auto t0 = self.now();
      auto opened = co_await rt.open(name, naming::wire::kOpenRead);
      const double forwarded = to_ms(self.now() - t0);
      if (opened.ok()) {
        svc::File f = opened.take();
        (void)co_await f.close();
      }

      // (b) client iteration: MapContextName at each boundary, then open.
      t0 = self.now();
      rt.set_current({pids[0], naming::kDefaultContext});
      for (int i = 0; i < hops; ++i) {
        auto mapped = co_await rt.map_context("next");
        rt.set_current(mapped.value());
      }
      auto opened2 = co_await rt.open("payload.dat", naming::wire::kOpenRead);
      const double iterated = to_ms(self.now() - t0);
      if (opened2.ok()) {
        svc::File f = opened2.take();
        (void)co_await f.close();
      }
      rows.push_back({hops, forwarded, iterated});
    }
  });
  if (!ok) return 1;

  std::printf("  %-10s %18s %18s %10s\n", "link hops", "forwarding (ms)",
              "client-iter (ms)", "ratio");
  for (const auto& r : rows) {
    std::printf("  %-10d %18.2f %18.2f %9.2fx\n", r.hops, r.forwarded_ms,
                r.iterated_ms, r.iterated_ms / r.forwarded_ms);
  }
  bench::note("");
  std::printf("  structural (calibration-independent) totals for the run:\n"
              "  %llu messages, %llu forwards, %llu moves, %llu bytes moved\n",
              static_cast<unsigned long long>(dom.stats().messages_sent),
              static_cast<unsigned long long>(dom.stats().forwards),
              static_cast<unsigned long long>(dom.stats().moves),
              static_cast<unsigned long long>(dom.stats().bytes_moved));
  bench::note("");
  bench::note("shape: forwarding adds ~one network hop + parse per link;");
  bench::note("client iteration pays a FULL round trip per link and");
  bench::note("re-sends the remaining name each time, so the gap widens");
  bench::note("with chain length — the protocol's forwarding rule is the");
  bench::note("right default (paper section 5.4).");
#if V_TRACE_ENABLED
  if (!trace_path.empty()) {
    if (!dom.tracer().write_chrome_json(trace_path)) {
      std::fprintf(stderr, "BENCH FAILURE: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("  trace written to %s (%llu traces, %zu spans)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(dom.tracer().trace_count()),
                dom.tracer().spans().size());
  }
#endif
  if (!bench::write_metrics(dom, metrics_path)) return 1;
  return bench::finish(json_path);
}
