// Shared plumbing for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md section 3 maps experiment ids to binaries) by driving the
// simulated V domain and printing paper-vs-measured rows.  Exit code is
// non-zero if any simulated process died unexpectedly.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "ipc/kernel.hpp"
#include "naming/types.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace v::bench {

inline void headline(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, double measured_ms,
                double paper_ms = -1) {
  if (paper_ms >= 0) {
    std::printf("  %-44s %9.2f ms   (paper: %7.2f ms, %+5.1f%%)\n",
                label.c_str(), measured_ms, paper_ms,
                100.0 * (measured_ms - paper_ms) / paper_ms);
  } else {
    std::printf("  %-44s %9.2f ms\n", label.c_str(), measured_ms);
  }
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Run `body` as a client process on `host` and drain the simulation.
/// Returns false (and reports) if any process failed.
inline bool run_client(ipc::Domain& dom, ipc::Host& host,
                       std::function<sim::Co<void>(ipc::Process)> body) {
  host.spawn("bench-client", std::move(body));
  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    return false;
  }
  return true;
}

}  // namespace v::bench
