// Shared plumbing for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md section 3 maps experiment ids to binaries) by driving the
// simulated V domain and printing paper-vs-measured rows.  Exit code is
// non-zero if any simulated process died unexpectedly.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "ipc/kernel.hpp"
#include "naming/types.hpp"
#include "servers/file_server.hpp"
#include "servers/prefix_server.hpp"
#include "svc/runtime.hpp"

namespace v::bench {

/// Machine-readable mirror of the printed report.  Every headline/row/note
/// call is recorded here; `write_json` (invoked automatically when the
/// binary is run with `--json <path>`) emits the whole report as JSON so
/// results can be checked in and diffed (e.g. BENCH_server_team.json).
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  void set_headline(std::string id, std::string title) {
    sections_.push_back({std::move(id), std::move(title), {}, {}});
  }
  /// Record the run parameters that make the numbers reproducible: the
  /// schedule seed (0 = deterministic FIFO tie-break, nonzero = fuzzed
  /// same-timestamp permutation) and the calibration preset the domain
  /// was built from.
  void set_run_info(std::uint64_t seed, std::string calibration) {
    run_seed_ = seed;
    run_calibration_ = std::move(calibration);
    have_run_info_ = true;
  }
  /// Record host-side timing mode: how many repeats the bench ran and the
  /// median wall-clock per repeat.  Host numbers are the only
  /// non-deterministic part of a report, so the JSON states how they were
  /// stabilised.
  void set_host_timing(int repeats, double median_ms) {
    host_repeats_ = repeats;
    host_median_ms_ = median_ms;
  }
  /// Record end-of-run name-cache counters so a checked-in report carries
  /// its hit/miss/stale/fallback profile alongside the latencies.
  void set_cache_stats(std::uint64_t hits, std::uint64_t misses,
                       std::uint64_t stale, std::uint64_t fallbacks) {
    cache_hits_ = hits;
    cache_misses_ = misses;
    cache_stale_ = stale;
    cache_fallbacks_ = fallbacks;
    have_cache_stats_ = true;
  }
  /// Record the observability configuration the run used: the V-trace
  /// head-sampling keep rate and the flight recorder's per-ring capacity.
  /// Both come from shells with identical defaults when V_TRACE=OFF, so a
  /// report carries them in every preset without breaking byte-diffs.
  void set_obs_info(double sample_rate, std::uint64_t flight_capacity) {
    obs_sample_rate_ = sample_rate;
    obs_flight_capacity_ = flight_capacity;
    have_obs_info_ = true;
  }
  /// Record one E14 scale cell (bench_scale): a whole production day at one
  /// shard count, reduced to its deterministic simulated numbers.  All
  /// fields derive from simulated time, so the array is byte-identical per
  /// seed — the CI scale stage diffs two runs to prove it.
  struct ScaleCell {
    std::string cell;
    std::size_t shards = 0;
    std::size_t hosts = 0;
    std::uint64_t opens = 0;
    std::uint64_t errors = 0;
    std::uint64_t wrong = 0;
    double throughput_per_s = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double flash_p99_ms = 0;
    std::uint64_t map_fetches = 0;
    std::uint64_t stale_retries = 0;
    std::uint64_t noreply_retries = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t handbacks = 0;
  };
  void add_scale_cell(ScaleCell cell) { scale_.push_back(std::move(cell)); }

  /// Record one engine-throughput workload (bench_engine): raw event and
  /// message-transaction counts plus the host wall-clock they took.  The
  /// derived events/txns per wall-second are what the CI perf stage gates;
  /// everything else in a report stays deterministic.
  void add_engine_workload(std::string workload, std::uint64_t events,
                           std::uint64_t txns, double wall_ms,
                           double sim_ms) {
    engine_.push_back(
        {std::move(workload), events, txns, wall_ms, sim_ms});
  }

  void add_row(const std::string& label, double measured_ms,
               double paper_ms) {
    if (sections_.empty()) sections_.push_back({"", "", {}, {}});
    sections_.back().rows.push_back({label, measured_ms, paper_ms});
  }
  void add_note(const std::string& text) {
    if (sections_.empty()) sections_.push_back({"", "", {}, {}});
    sections_.back().notes.push_back(text);
  }

  /// Serialise everything recorded so far to `path`.  Returns false on
  /// I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    if (have_run_info_) {
      std::fprintf(f,
                   "  \"run\": {\"seed\": \"0x%llx\", \"schedule\": \"%s\", "
                   "\"calibration\": \"%s\"",
                   static_cast<unsigned long long>(run_seed_),
                   run_seed_ == 0 ? "fifo" : "fuzz",
                   escape(run_calibration_).c_str());
      if (host_repeats_ > 0) {
        std::fprintf(f,
                     ", \"host_repeats\": %d, \"host_median_ms\": %.3f",
                     host_repeats_, host_median_ms_);
      }
      if (have_cache_stats_) {
        std::fprintf(f,
                     ", \"namecache\": {\"hits\": %llu, \"misses\": %llu, "
                     "\"stale\": %llu, \"fallbacks\": %llu}",
                     static_cast<unsigned long long>(cache_hits_),
                     static_cast<unsigned long long>(cache_misses_),
                     static_cast<unsigned long long>(cache_stale_),
                     static_cast<unsigned long long>(cache_fallbacks_));
      }
      if (have_obs_info_) {
        std::fprintf(f,
                     ", \"obs\": {\"sample_rate\": %.4f, "
                     "\"flight_capacity\": %llu}",
                     obs_sample_rate_,
                     static_cast<unsigned long long>(obs_flight_capacity_));
      }
      std::fprintf(f, "},\n");
    }
    if (!engine_.empty()) {
      std::fprintf(f, "  \"engine\": [\n");
      for (std::size_t e = 0; e < engine_.size(); ++e) {
        const EngineWorkload& w = engine_[e];
        const double wall_s = w.wall_ms / 1000.0;
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"events\": %llu, \"txns\": %llu, "
            "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
            "\"events_per_wall_second\": %.0f, "
            "\"txns_per_wall_second\": %.0f}%s\n",
            escape(w.workload).c_str(),
            static_cast<unsigned long long>(w.events),
            static_cast<unsigned long long>(w.txns), w.wall_ms, w.sim_ms,
            wall_s > 0 ? static_cast<double>(w.events) / wall_s : 0.0,
            wall_s > 0 ? static_cast<double>(w.txns) / wall_s : 0.0,
            e + 1 < engine_.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
    }
    if (!scale_.empty()) {
      std::fprintf(f, "  \"scale\": [\n");
      for (std::size_t c = 0; c < scale_.size(); ++c) {
        const ScaleCell& s = scale_[c];
        std::fprintf(
            f,
            "    {\"cell\": \"%s\", \"shards\": %zu, \"hosts\": %zu, "
            "\"opens\": %llu, \"errors\": %llu, \"wrong\": %llu, "
            "\"throughput_per_s\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
            "\"flash_p99_ms\": %.4f, \"map_fetches\": %llu, "
            "\"stale_retries\": %llu, \"noreply_retries\": %llu, "
            "\"handoffs\": %llu, \"handbacks\": %llu}%s\n",
            escape(s.cell).c_str(), s.shards, s.hosts,
            static_cast<unsigned long long>(s.opens),
            static_cast<unsigned long long>(s.errors),
            static_cast<unsigned long long>(s.wrong), s.throughput_per_s,
            s.p50_ms, s.p99_ms, s.flash_p99_ms,
            static_cast<unsigned long long>(s.map_fetches),
            static_cast<unsigned long long>(s.stale_retries),
            static_cast<unsigned long long>(s.noreply_retries),
            static_cast<unsigned long long>(s.handoffs),
            static_cast<unsigned long long>(s.handbacks),
            c + 1 < scale_.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
    }
    std::fprintf(f, "  \"sections\": [\n");
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const Section& sec = sections_[s];
      std::fprintf(f, "    {\n      \"id\": \"%s\",\n      \"title\": \"%s\",\n",
                   escape(sec.id).c_str(), escape(sec.title).c_str());
      std::fprintf(f, "      \"rows\": [\n");
      for (std::size_t r = 0; r < sec.rows.size(); ++r) {
        const Row& row = sec.rows[r];
        std::fprintf(f, "        {\"label\": \"%s\", \"measured_ms\": %.4f",
                     escape(row.label).c_str(), row.measured_ms);
        if (row.paper_ms >= 0) {
          std::fprintf(f, ", \"paper_ms\": %.4f", row.paper_ms);
        }
        std::fprintf(f, "}%s\n", r + 1 < sec.rows.size() ? "," : "");
      }
      std::fprintf(f, "      ],\n      \"notes\": [\n");
      for (std::size_t n = 0; n < sec.notes.size(); ++n) {
        std::fprintf(f, "        \"%s\"%s\n", escape(sec.notes[n]).c_str(),
                     n + 1 < sec.notes.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n    }%s\n",
                   s + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string label;
    double measured_ms;
    double paper_ms;
  };
  struct Section {
    std::string id;
    std::string title;
    std::vector<Row> rows;
    std::vector<std::string> notes;
  };
  struct EngineWorkload {
    std::string workload;
    std::uint64_t events;
    std::uint64_t txns;
    double wall_ms;
    double sim_ms;
  };

  static std::string escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<Section> sections_;
  std::vector<EngineWorkload> engine_;
  std::vector<ScaleCell> scale_;
  bool have_run_info_ = false;
  std::uint64_t run_seed_ = 0;
  std::string run_calibration_;
  int host_repeats_ = 0;
  double host_median_ms_ = 0;
  bool have_cache_stats_ = false;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_stale_ = 0;
  std::uint64_t cache_fallbacks_ = 0;
  bool have_obs_info_ = false;
  double obs_sample_rate_ = 1.0;
  std::uint64_t obs_flight_capacity_ = 0;
};

inline void headline(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
  JsonReport::instance().set_headline(id, title);
}

inline void row(const std::string& label, double measured_ms,
                double paper_ms = -1) {
  if (paper_ms >= 0) {
    std::printf("  %-44s %9.2f ms   (paper: %7.2f ms, %+5.1f%%)\n",
                label.c_str(), measured_ms, paper_ms,
                100.0 * (measured_ms - paper_ms) / paper_ms);
  } else {
    std::printf("  %-44s %9.2f ms\n", label.c_str(), measured_ms);
  }
  JsonReport::instance().add_row(label, measured_ms, paper_ms);
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
  JsonReport::instance().add_note(text);
}

/// Parse `--json <path>` from argv.  Call once at the top of main(); if
/// present, the report is flushed to `path` by `finish()`.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// True when the bare flag (e.g. "--flight") appears anywhere in argv.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Parse a `--<flag> <value>` option from argv ("" when absent), e.g.
/// flag_value(argc, argv, "--metrics") or "--trace".
inline std::string flag_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return {};
}

/// Write the domain's metrics-registry snapshot (same numbers a `[metrics]`
/// Read serves) to `path`; "" skips.  Kept separate from `--json` so the
/// checked-in bench reports stay byte-identical whether or not a metrics
/// dump was requested.  With V_TRACE=OFF the registry shell serialises as
/// "{}".  Returns false on I/O failure.
inline bool write_metrics(const ipc::Domain& dom, const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH FAILURE: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = dom.metrics().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  metrics snapshot written to %s\n", path.c_str());
  return true;
}

/// Parse `--repeat <n>` from argv (default 1, floor 1).  Simulated times
/// are deterministic; repeats exist to stabilise HOST-side wall-clock
/// numbers (see `median_host_ms`).
inline int repeat_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--repeat") {
      const long n = std::strtol(argv[i + 1], nullptr, 0);
      return n > 1 ? static_cast<int>(n) : 1;
    }
  }
  return 1;
}

/// Run `fn` `repeats` times and return the MEDIAN host wall-clock per run
/// in milliseconds (median, not mean: robust against a cold first run and
/// scheduler outliers).  Also records the mode in the JSON run info.
template <typename Fn>
inline double median_host_ms(int repeats, Fn&& fn) {
  if (repeats < 1) repeats = 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  JsonReport::instance().set_host_timing(repeats, median);
  return median;
}

/// Print and record name-cache counters (aggregated by the caller when a
/// bench runs several domains).
inline void cache_stats(std::uint64_t hits, std::uint64_t misses,
                        std::uint64_t stale, std::uint64_t fallbacks) {
  std::printf(
      "  namecache: %llu hits, %llu misses, %llu stale, %llu fallbacks\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(stale),
      static_cast<unsigned long long>(fallbacks));
  JsonReport::instance().set_cache_stats(hits, misses, stale, fallbacks);
}
inline void cache_stats(const svc::NameCache& cache) {
  cache_stats(cache.hits(), cache.misses(), cache.stale(),
              cache.fallbacks());
}

/// Parse `--seed <n>` (decimal or 0x-hex) from argv.  0 — the default —
/// leaves the event loop in deterministic FIFO tie-break order; nonzero
/// should be fed to `dom.loop().enable_fuzz(seed)` for a fuzzed schedule.
inline std::uint64_t seed_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--seed") {
      return std::strtoull(argv[i + 1], nullptr, 0);
    }
  }
  return 0;
}

/// Print and record the run parameters (schedule seed + calibration
/// preset) so every checked-in JSON report states how it was produced.
inline void run_info(std::uint64_t seed, const std::string& calibration) {
  std::printf("  schedule seed 0x%llx (%s), calibration %s\n",
              static_cast<unsigned long long>(seed),
              seed == 0 ? "fifo ties" : "fuzzed ties", calibration.c_str());
  JsonReport::instance().set_run_info(seed, calibration);
}

/// Print and record the observability configuration (V-trace head-sampling
/// keep rate + flight-recorder ring capacity).  The V_TRACE=OFF shells
/// answer the same defaults (rate 1.0, capacity kDefaultFlightCapacity),
/// so checked-in reports stay byte-identical across build presets.
inline void obs_info(const ipc::Domain& dom) {
  const double rate = dom.tracer().sampler().rate();
  const auto cap = static_cast<std::uint64_t>(dom.flight().capacity());
  std::printf("  obs: sample rate %.2f, flight capacity %llu\n", rate,
              static_cast<unsigned long long>(cap));
  JsonReport::instance().set_obs_info(rate, cap);
}

/// Flush the JSON report if `--json` was given.  Returns the process exit
/// code: `ok_exit` normally, 1 if the report could not be written.
inline int finish(const std::string& json_path, int ok_exit = 0) {
  if (json_path.empty()) return ok_exit;
  if (!JsonReport::instance().write(json_path)) {
    std::fprintf(stderr, "BENCH FAILURE: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::printf("\n  JSON report written to %s\n", json_path.c_str());
  return ok_exit;
}

/// Run `body` as a client process on `host` and drain the simulation.
/// Returns false (and reports) if any process failed.
inline bool run_client(ipc::Domain& dom, ipc::Host& host,
                       std::function<sim::Co<void>(ipc::Process)> body) {
  host.spawn("bench-client", std::move(body));
  dom.run();
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    return false;
  }
  return true;
}

}  // namespace v::bench
