// E3 (paper section 3.1): sequential stream reading.  "With a disk
// delivering a 512 byte page every 15 milliseconds, a file can be read
// sequentially averaging 17.13 milliseconds per page."
//
// Sweeps locality and disk model to expose the shape: disk-bound pipeline
// with ~2 ms of non-overlapped protocol time per page.
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

double measure_stream(bool remote, servers::DiskModel disk, int pages) {
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& fsh = remote ? dom.add_host("fs1") : ws;
  servers::FileServer fs("fs", disk, /*register_service=*/false);
  fs.put_file("seq.dat", std::string(static_cast<std::size_t>(pages + 8) * 512,
                                     'd'));
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  double per_page = -1;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    svc::Rt rt(self,
               {ipc::ProcessId::invalid(), {fs_pid, naming::kDefaultContext}});
    auto opened = co_await rt.open("seq.dat", naming::wire::kOpenRead);
    svc::File f = opened.take();
    std::vector<std::byte> page(512);
    for (std::uint32_t b = 0; b < 4; ++b) {  // warm the read-ahead pipeline
      (void)co_await f.read_block(b, page);
    }
    const auto t0 = self.now();
    for (std::uint32_t b = 4; b < 4 + static_cast<std::uint32_t>(pages);
         ++b) {
      (void)co_await f.read_block(b, page);
    }
    per_page = to_ms(self.now() - t0) / pages;
    (void)co_await f.close();
  });
  return ok ? per_page : -1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E3", "sequential 512 B page reads (15 ms/page disk)");
  bench::row("remote server, disk model, steady state",
             measure_stream(true, servers::DiskModel::kDisk, 32), 17.13);
  bench::row("local server, disk model",
             measure_stream(false, servers::DiskModel::kDisk, 32));
  bench::row("remote server, memory-buffered (no disk)",
             measure_stream(true, servers::DiskModel::kMemory, 32));
  bench::row("local server, memory-buffered",
             measure_stream(false, servers::DiskModel::kMemory, 32));
  bench::note("");
  bench::note("shape: with the disk model the stream is disk-bound (>=15 ms)");
  bench::note("plus ~2 ms non-overlapped protocol time — the paper calls");
  bench::note("this comparable to highly tuned file-access protocols.");
  bench::note("Without the disk the same protocol sustains one page per");
  bench::note("~6 ms remote / ~1.3 ms local.");
  return bench::finish(json_path);
}
