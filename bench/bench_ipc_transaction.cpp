// E1 / Figure 1 (paper section 3.1): the Send-Receive-Reply message
// transaction.  Paper numbers: 0.77 ms local, 2.56 ms between two SUN
// workstations on 3 Mbit Ethernet.  Also reports Forward chains and the
// kernel service-registry (GetPid) costs that section 4 describes.
#include "bench_util.hpp"
#include "msg/message.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

sim::Co<void> echo(ipc::Process self) {
  for (;;) {
    auto env = co_await self.receive();
    self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E1 / Fig.1", "Send-Receive-Reply message transaction");

  ipc::Domain dom;
  auto& ws1 = dom.add_host("ws1");
  auto& ws2 = dom.add_host("ws2");
  const auto local_server = ws1.spawn("echo-local", echo);
  const auto remote_server = ws2.spawn("echo-remote", echo);
  const auto forwarder =
      ws1.spawn("forwarder", [local_server](ipc::Process self) -> Co<void> {
        for (;;) {
          auto env = co_await self.receive();
          self.forward(env, local_server);
        }
      });

  double local_ms = 0, remote_ms = 0, forwarded_ms = 0;
  double getpid_local_ms = 0, getpid_remote_ms = 0;
  const bool ok = bench::run_client(dom, ws1, [&](ipc::Process self)
                                                  -> Co<void> {
    constexpr int kIters = 100;
    auto timed = [&](ipc::ProcessId dest) -> Co<double> {
      const auto t0 = self.now();
      for (int i = 0; i < kIters; ++i) {
        (void)co_await self.send(msg::Message{}, dest);
      }
      co_return to_ms(self.now() - t0) / kIters;
    };
    local_ms = co_await timed(local_server);
    remote_ms = co_await timed(remote_server);
    forwarded_ms = co_await timed(forwarder);

    self.set_pid(ipc::ServiceId::kStorageServer, remote_server,
                 ipc::Scope::kBoth);
    self.set_pid(ipc::ServiceId::kTimeServer, local_server,
                 ipc::Scope::kLocal);
    auto t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      (void)co_await self.get_pid(ipc::ServiceId::kTimeServer,
                                  ipc::Scope::kLocal);
    }
    getpid_local_ms = to_ms(self.now() - t0) / kIters;
    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      (void)co_await self.get_pid(ipc::ServiceId::kStorageServer,
                                  ipc::Scope::kRemote);
    }
    getpid_remote_ms = to_ms(self.now() - t0) / kIters;
  });
  if (!ok) return 1;

  bench::row("32 B transaction, same host", local_ms, 0.77);
  bench::row("32 B transaction, across 3 Mbit Ethernet", remote_ms, 2.56);
  bench::row("same, via one local Forward hop", forwarded_ms);
  bench::note("");
  bench::note("service registry (section 4.2):");
  bench::row("GetPid, local table hit", getpid_local_ms);
  bench::row("GetPid, broadcast to remote kernels", getpid_remote_ms);
  bench::note("");
  bench::note("pid structure (Fig. 2): locality test is a 16-bit compare;");
  bench::note("see test_ipc Pid.* for the uniqueness/locality checks.");
  return bench::finish(json_path);
}
