// E8 (paper section 2.2): distributed name interpretation versus the
// centralized name server, along the paper's three quantitative axes:
//
//   Efficiency  — per-resolution latency (fresh lookup each time, as the
//                 paper argues caching would "only benefit the few
//                 applications that reuse names");
//   Consistency — stale registry entries after object deletions;
//   Reliability — fraction of reachable objects that remain nameable as
//                 hosts fail.
#include "baseline/central.hpp"
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E8", "distributed interpretation vs centralized name "
                        "server (section 2.2)");

  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& fs1h = dom.add_host("fs1");
  auto& fs2h = dom.add_host("fs2");
  auto& nsh = dom.add_host("ns1");

  constexpr int kFiles = 64;
  servers::FileServer fs1("fs1");
  servers::FileServer fs2("fs2", servers::DiskModel::kMemory, false);
  for (int i = 0; i < kFiles / 2; ++i) {
    fs1.put_file("data/a" + std::to_string(i), "alpha object");
    fs2.put_file("data/b" + std::to_string(i), "beta object");
  }
  const auto fs1_pid =
      fs1h.spawn("fs1", [&](ipc::Process p) { return fs1.run(p); });
  const auto fs2_pid =
      fs2h.spawn("fs2", [&](ipc::Process p) { return fs2.run(p); });

  servers::ContextPrefixServer prefixes;
  prefixes.define("fs1", {.target = {fs1_pid, naming::kDefaultContext}});
  prefixes.define("fs2", {.target = {fs2_pid, naming::kDefaultContext}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  baseline::CentralNameServer central;
  for (int i = 0; i < kFiles / 2; ++i) {
    central.preload("/fs1/data/a" + std::to_string(i),
                    {{fs1_pid, fs1.context_of("data")},
                     "a" + std::to_string(i)});
    central.preload("/fs2/data/b" + std::to_string(i),
                    {{fs2_pid, fs2.context_of("data")},
                     "b" + std::to_string(i)});
  }
  const auto ns_pid =
      nsh.spawn("central-ns", [&](ipc::Process p) { return central.run(p); });

  double distributed_ms = 0, distributed_prefix_ms = 0, central_ms = 0;
  int stale_lookups = 0, stale_uses_failed = 0;
  int central_named_after_ns_death = 0, distributed_named_after_ns_death = 0;
  int distributed_named_after_fs2_death = 0;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs1_pid, naming::kDefaultContext});
    baseline::CentralClient nc(self, ns_pid);

    // --- efficiency ---------------------------------------------------------
    // The paper's claim is about the number of SERVER INTERACTIONS per
    // reference: interpreting the name at the object's own server is one;
    // the central model inserts a registry transaction first.  The common
    // distributed case is the current context (no prefix); the prefix path
    // adds only LOCAL work (measured by E4) and is reported separately.
    constexpr int kIters = 32;
    rt.set_current({fs1_pid, naming::kDefaultContext});
    auto t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string name = "data/a" + std::to_string(i % 16);
      auto opened = co_await rt.open(name, naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    distributed_ms = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string name = "[fs1]data/a" + std::to_string(i % 16);
      auto opened = co_await rt.open(name, naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    distributed_prefix_ms = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string name = "/fs1/data/a" + std::to_string(i % 16);
      auto binding = co_await nc.lookup(name);
      rt.set_current(binding.value().home);
      auto opened =
          co_await rt.open(binding.value().leaf, naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    central_ms = to_ms(self.now() - t0) / kIters;
    rt.set_current({fs1_pid, naming::kDefaultContext});

    // --- consistency ----------------------------------------------------------
    // Delete 8 objects through the distributed protocol (name and object
    // die together); the central registry is not told.
    for (int i = 0; i < 8; ++i) {
      const std::string vname = "[fs1]data/a" + std::to_string(i);
      (void)co_await rt.remove(vname);
    }
    for (int i = 0; i < 8; ++i) {
      const std::string cname = "/fs1/data/a" + std::to_string(i);
      auto binding = co_await nc.lookup(cname);
      if (binding.ok()) {
        ++stale_lookups;
        rt.set_current(binding.value().home);
        auto opened =
            co_await rt.open(binding.value().leaf, naming::wire::kOpenRead);
        if (!opened.ok()) ++stale_uses_failed;
      }
    }
    rt.set_current({fs1_pid, naming::kDefaultContext});

    // --- reliability -----------------------------------------------------------
    // Kill the name server's host; count which of 16 fs2 objects each
    // model can still name and reach.
    nsh.crash();
    for (int i = 0; i < 16; ++i) {
      const std::string cname = "/fs2/data/b" + std::to_string(i);
      auto binding = co_await nc.lookup(cname);
      if (binding.ok()) ++central_named_after_ns_death;
      const std::string vname = "[fs2]data/b" + std::to_string(i);
      auto opened = co_await rt.open(vname, naming::wire::kOpenRead);
      if (opened.ok()) {
        ++distributed_named_after_ns_death;
        svc::File f = opened.take();
        (void)co_await f.close();
      }
    }
    // Symmetric stress for the distributed model: kill fs2 itself; objects
    // on fs2 are gone for everyone (names died WITH their objects), while
    // fs1 objects stay nameable.
    fs2h.crash();
    for (int i = 8; i < 16; ++i) {
      const std::string vname = "[fs1]data/a" + std::to_string(i);
      auto opened = co_await rt.open(vname, naming::wire::kOpenRead);
      if (opened.ok()) {
        ++distributed_named_after_fs2_death;
        svc::File f = opened.take();
        (void)co_await f.close();
      }
    }
  });
  if (!ok) return 1;

  bench::note("efficiency (fresh resolution + open + close, remote server):");
  bench::row("distributed: current-context interpretation", distributed_ms);
  bench::row("distributed: via (local) context prefix", distributed_prefix_ms);
  bench::row("centralized: registry lookup + direct open", central_ms);
  std::printf("  extra cost of the name-server interaction vs current-"
              "context: %+.0f%%\n",
              100.0 * (central_ms - distributed_ms) / distributed_ms);
  bench::note("  the prefix path's premium is all LOCAL prefix-server time");
  bench::note("  (E4's 3.9 ms delta); the central premium is an extra");
  bench::note("  NETWORK transaction that scales with server distance.");
  bench::note("");
  bench::note("consistency (8 objects deleted at their home server):");
  std::printf("  central registry entries still resolving (stale): %d/8\n",
              stale_lookups);
  std::printf("  stale bindings that failed when used:             %d/%d\n",
              stale_uses_failed, stale_lookups);
  bench::note("  distributed model: names die with objects — 0 stale by "
              "construction.");
  bench::note("");
  bench::note("reliability (name-server host crashed):");
  std::printf("  centrally nameable fs2 objects:    %d/16\n",
              central_named_after_ns_death);
  std::printf("  distributed nameable fs2 objects:  %d/16\n",
              distributed_named_after_ns_death);
  std::printf("  after fs2 ALSO dies, fs1 objects still nameable "
              "(distributed): %d/8\n",
              distributed_named_after_fs2_death);
  bench::note("  a server crash takes out exactly its own objects — there");
  bench::note("  is no central failure point that unnames healthy ones.");
  return bench::finish(json_path);
}
