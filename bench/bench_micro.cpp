// Real-time (not simulated-time) microbenchmarks of the library itself,
// via google-benchmark: event-loop throughput, coroutine transaction rate,
// name parsing and descriptor encode/decode.  These gate the simulator's
// own performance (how fast wall-clock time the reproduction runs), not
// the paper's numbers.
#include <benchmark/benchmark.h>

#include "ipc/kernel.hpp"
#include "msg/message.hpp"
#include "naming/descriptor.hpp"
#include "naming/parse.hpp"
#include "naming/protocol.hpp"
#include "servers/file_server.hpp"
#include "sim/event_loop.hpp"
#include "svc/runtime.hpp"

namespace {

using namespace v;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i, [&sink] { ++sink; });
    }
    loop.run_until_idle();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_IpcTransactionRoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    ipc::Domain dom;
    auto& ws1 = dom.add_host("ws1");
    auto& ws2 = dom.add_host("ws2");
    const auto server =
        ws2.spawn("echo", [](ipc::Process self) -> sim::Co<void> {
          for (;;) {
            auto env = co_await self.receive();
            self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
          }
        });
    ws1.spawn("client", [server](ipc::Process self) -> sim::Co<void> {
      for (int i = 0; i < 200; ++i) {
        (void)co_await self.send(msg::Message{}, server);
      }
    });
    dom.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.SetLabel("simulated transactions per wall-clock unit");
}
BENCHMARK(BM_IpcTransactionRoundTrips);

void BM_CsnameOpenClose(benchmark::State& state) {
  // Host cost of the full client send path (Rt::send_csname request
  // staging + reply decode), the hot loop audited for needless segment
  // copies: with no payload the name rides as a borrowed span, so the
  // common CSname request stages zero client-side copies.  Audit medians
  // (15 reps, this benchmark): always-copy staging 828 us, borrowed span
  // 811 us per 200 transactions.
  for (auto _ : state) {
    ipc::Domain dom;
    auto& ws1 = dom.add_host("ws1");
    servers::FileServer fs("fs", servers::DiskModel::kMemory, false);
    for (int f = 0; f < 8; ++f) {
      fs.put_file("usr/mann/f" + std::to_string(f) + ".dat", "x");
    }
    const auto fs_pid =
        ws1.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
    ws1.spawn("client", [fs_pid](ipc::Process self) -> sim::Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {fs_pid, naming::kDefaultContext}});
      for (int i = 0; i < 200; ++i) {
        const std::string name =
            "usr/mann/f" + std::to_string(i % 8) + ".dat";
        auto opened = co_await rt.open(name, naming::wire::kOpenRead);
        svc::File file = opened.take();
        (void)co_await file.close();
      }
    });
    dom.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.SetLabel("open+close round trips through Rt::send_csname");
}
BENCHMARK(BM_CsnameOpenClose);

void BM_NameComponentParse(benchmark::State& state) {
  const std::string name = "usr/mann/projects/v-system/kernel/naming.mss";
  for (auto _ : state) {
    std::size_t index = 0, next = 0, count = 0;
    for (;;) {
      const auto comp = naming::next_component(name, index, next);
      if (comp.empty()) break;
      count += comp.size();
      index = next;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_NameComponentParse);

void BM_PrefixParse(benchmark::State& state) {
  const std::string name = "[storage1]/usr/mann/naming.mss";
  for (auto _ : state) {
    std::size_t rest = 0;
    auto prefix = naming::parse_prefix(name, rest);
    benchmark::DoNotOptimize(prefix);
  }
}
BENCHMARK(BM_PrefixParse);

void BM_DescriptorEncodeDecode(benchmark::State& state) {
  naming::ObjectDescriptor desc;
  desc.type = naming::DescriptorType::kFile;
  desc.flags = naming::kReadable | naming::kWriteable;
  desc.size = 123456;
  desc.owner = "mann";
  desc.name = "naming.mss";
  std::array<std::byte, naming::ObjectDescriptor::kWireSize> wire{};
  for (auto _ : state) {
    desc.encode(wire);
    auto decoded = naming::ObjectDescriptor::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DescriptorEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
