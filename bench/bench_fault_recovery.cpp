// E11 (extension): V-fault recovery — what reliability costs on a lossy
// network and how fast a client rebinds after a server crash (DESIGN.md 4h,
// PROTOCOL.md 12).
//
// The paper prices the happy path (E1-E6) on a network that never loses a
// packet and servers that never die.  This bench prices the other half of
// the story: kernel retransmission masking packet loss underneath an open,
// the worst-case kNoReply detection latency when a server link is dead, and
// the restart -> first-correct-reply recovery latency through multicast
// rebinding (direct names and prefix-routed names), swept over 16 fault
// seeds.  The oracle is the chaos matrix's: a recovering open may cost
// retries, but it must never return wrong bytes.
//
// With V_FAULT=OFF only the clean-network baseline row is produced (the
// fault rows need the subsystem the build compiled out).
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"

using namespace v;
using naming::wire::kOpenRead;
using sim::Co;
using sim::kMillisecond;
using sim::to_ms;

namespace {

/// Service group every file-server incarnation joins (mirrors the test
/// fixture): recovery probes multicast here reach whichever incarnations
/// are alive, under whatever pids they currently hold.
constexpr ipc::GroupId kStorageGroup = 0xFA01;

constexpr std::string_view kDirectName = "usr/mann/naming.mss";
constexpr std::string_view kDirectBytes = "Distributed name interpretation.";
constexpr std::string_view kPrefixedName = "[home]paper.mss";
constexpr std::string_view kPrefixedBytes = "ICDCS 1984.";

/// The standard two-file-server installation (tests/v_fixture.hpp without
/// the gtest plumbing): alpha on fs1 with mann's home directory, beta on
/// fs2, a per-user prefix server on ws1, every incarnation in the storage
/// group so multicast rebinding has someone to ask.
struct Install {
  ipc::Domain dom;
  ipc::Host& ws1;
  ipc::Host& fs1;
  ipc::Host& fs2;
  servers::FileServer alpha;
  servers::FileServer beta;
  servers::ContextPrefixServer prefixes;
  ipc::ProcessId alpha_pid;
  ipc::ProcessId beta_pid;
  ipc::ProcessId prefix_pid;

  Install()
      : ws1(dom.add_host("ws1")),
        fs1(dom.add_host("fs1")),
        fs2(dom.add_host("fs2")),
        alpha("alpha"),
        beta("beta", servers::DiskModel::kMemory, false),
        prefixes("mann") {
    alpha.put_file(std::string(kDirectName), std::string(kDirectBytes));
    alpha.put_file("usr/mann/paper.mss", std::string(kPrefixedBytes));
    alpha.map_well_known(naming::kHomeContext, "usr/mann");
    beta.put_file("pub/readme", "public files live here");
    alpha.set_service_group(kStorageGroup);
    beta.set_service_group(kStorageGroup);
    alpha_pid = fs1.spawn("alpha-fs",
                          [this](ipc::Process p) { return alpha.run(p); });
    beta_pid = fs2.spawn("beta-fs",
                         [this](ipc::Process p) { return beta.run(p); });
    prefixes.define("home",
                    {.target = {alpha_pid, alpha.context_of("usr/mann")}});
    prefixes.set_rebind_group(kStorageGroup);
    prefix_pid = ws1.spawn("prefix-server",
                           [this](ipc::Process p) { return prefixes.run(p); });
  }

  /// Restart alpha's host and re-spawn the server as a NEW incarnation
  /// (fresh pid, fresh generation floor; rejoins the storage group).
  void respawn_alpha() {
    if (!fs1.alive()) fs1.restart();
    alpha_pid = fs1.spawn("alpha-fs",
                          [this](ipc::Process p) { return alpha.run(p); });
  }
};

/// Open `name` until it succeeds AND carries `expect`, up to `attempts`
/// tries `gap` apart.  Every successful open's bytes are checked; wrong
/// bytes count into `*wrong` (the zero-wrong-answers oracle).  `*open_ms`,
/// when non-null, accumulates ONLY the time spent inside rt.open() —
/// verification reads and retry gaps stay untimed so loss rows price the
/// same thing E4 prices (the open itself, retransmissions included).
Co<bool> open_until_correct(ipc::Process self, svc::Rt& rt,
                            std::string_view name, std::string_view expect,
                            int attempts, sim::SimDuration gap, int* wrong,
                            sim::SimDuration* open_ms) {
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) co_await self.delay(gap);
    const auto t0 = self.now();
    auto opened = co_await rt.open(name, kOpenRead);
    if (open_ms != nullptr) *open_ms += self.now() - t0;
    if (!opened.ok()) continue;  // clean failure: retry after the gap
    svc::File f = opened.take();
    auto bytes = co_await f.read_all();
    if (!bytes.ok()) {
      (void)co_await f.close();
      continue;
    }
    if (std::string(reinterpret_cast<const char*>(bytes.value().data()),
                    bytes.value().size()) != expect) {
      ++*wrong;
    }
    (void)co_await f.close();
    co_return true;
  }
  co_return false;
}

struct LossCell {
  double mean_open_ms = -1;  ///< mean time-to-successful-open
  int wrong = 0;
  int gave_up = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t drops = 0;
};

/// 32 opens of the direct remote name under symmetric loss; the kernel's
/// retransmission layer (plus one Rt retry + rebind, the standard client
/// recovery policy) must keep every one correct.
LossCell measure_under_loss(double loss, std::uint64_t seed) {
  constexpr int kOpens = 32;
  Install fx;
  fault::FaultPlan plan(seed);
  const bool faulted = loss > 0;
  if (faulted) {
    fault::LinkFaults link;
    link.drop = loss;
    link.duplicate = loss / 2;
    link.reorder = loss / 2;
    plan.set_default_link(link);
    fx.dom.install_faults(plan);
  }

  LossCell cell;
  bench::run_client(fx.dom, fx.ws1, [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.alpha_pid, naming::kDefaultContext}});
    svc::RecoveryPolicy policy;
    policy.noreply_retries = 1;
    policy.rebind_group = kStorageGroup;
    rt.set_recovery(policy);
    sim::SimDuration total = 0;
    int counted = 0;
    for (int i = 0; i < kOpens; ++i) {
      sim::SimDuration spent = 0;
      const bool served = co_await open_until_correct(
          self, rt, kDirectName, kDirectBytes, 8, 5 * kMillisecond,
          &cell.wrong, &spent);
      if (!served) {
        ++cell.gave_up;
        continue;
      }
      total += spent;
      ++counted;
    }
    if (counted > 0) cell.mean_open_ms = to_ms(total) / counted;
  });
  cell.retransmits = plan.stats().retransmits;
  cell.drops = plan.stats().drops;
  return cell;
}

#if V_FAULT_ENABLED

/// Worst-case detection latency: the client->server link drops everything,
/// so one send burns the whole retry budget before kNoReply surfaces.
double measure_noreply(std::uint64_t seed, fault::FaultStats* out) {
  Install fx;
  fault::FaultPlan plan(seed);
  fault::LinkFaults dead;
  dead.drop = 1.0;
  plan.set_link(fx.ws1.id(), fx.fs1.id(), dead);
  fx.dom.install_faults(plan);

  double ms = -1;
  bench::run_client(fx.dom, fx.ws1, [&](ipc::Process self) -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fx.alpha_pid, naming::kDefaultContext}});
    const auto t0 = self.now();
    auto opened = co_await rt.open(kDirectName, kOpenRead);
    if (!opened.ok()) ms = to_ms(self.now() - t0);
  });
  *out = plan.stats();
  return ms;
}

struct RecoveryCell {
  double direct_ms = -1;    ///< restart -> first correct direct open
  double prefixed_ms = -1;  ///< then: first correct [home] open
  int wrong = 0;
  bool recovered = false;
};

/// Crash alpha at 40 ms, restart it at 90 ms as a fresh incarnation, and
/// measure how long a retrying client (cache + standard recovery policy,
/// 5% background loss) takes from the restart instant to its first correct
/// reply — once for the direct name (stale context pair, repaired by
/// multicast rebinding) and once for the prefix-routed name (stale prefix
/// table entry, repaired by the prefix server's own group probe).
RecoveryCell measure_recovery(std::uint64_t seed) {
  constexpr sim::SimTime kCrashAt = 40 * kMillisecond;
  constexpr sim::SimTime kRestartAt = 90 * kMillisecond;
  Install fx;
  fault::FaultPlan plan(seed);
  fault::LinkFaults link;
  link.drop = 0.05;
  link.duplicate = 0.025;
  link.reorder = 0.025;
  plan.set_default_link(link);
  plan.crash_at(kCrashAt, fx.fs1.id());
  plan.restart_at(kRestartAt, fx.fs1.id(), [&fx] { fx.respawn_alpha(); });
  fx.dom.install_faults(plan);

  RecoveryCell cell;
  bench::run_client(fx.dom, fx.ws1, [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, naming::ContextPair{fx.alpha_pid, naming::kDefaultContext});
    svc::NameCache cache;
    rt.set_cache(&cache);
    svc::RecoveryPolicy policy;
    policy.noreply_retries = 1;
    policy.rebind_group = kStorageGroup;
    rt.set_recovery(policy);

    // Warm both paths against the original incarnation, so the client
    // holds exactly the stale state (context pair, cache entries, prefix
    // binding) a real workstation would hold when the server dies.
    (void)co_await open_until_correct(self, rt, kDirectName, kDirectBytes, 4,
                                      5 * kMillisecond, &cell.wrong, nullptr);
    (void)co_await open_until_correct(self, rt, kPrefixedName, kPrefixedBytes,
                                      4, 5 * kMillisecond, &cell.wrong,
                                      nullptr);
    if (self.now() < kRestartAt) co_await self.delay(kRestartAt - self.now());

    const auto t0 = self.now();
    const bool direct_ok = co_await open_until_correct(
        self, rt, kDirectName, kDirectBytes, 200, 5 * kMillisecond,
        &cell.wrong, nullptr);
    if (direct_ok) cell.direct_ms = to_ms(self.now() - t0);

    const auto t1 = self.now();
    const bool prefixed_ok = co_await open_until_correct(
        self, rt, kPrefixedName, kPrefixedBytes, 200, 5 * kMillisecond,
        &cell.wrong, nullptr);
    if (prefixed_ok) cell.prefixed_ms = to_ms(self.now() - t1);

    cell.recovered = direct_ok && prefixed_ok;
    rt.set_cache(nullptr);
  });
  return cell;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? -1 : v[v.size() / 2];
}

#endif  // V_FAULT_ENABLED

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const int repeats = bench::repeat_from_args(argc, argv);
  int rc = 0;

  bench::headline("E11-fault",
                  "reliable transactions on a lossy network (V-fault)");
  bench::run_info(0, "SUN 3 Mbit (default)");
  {
    const ipc::Domain probe;
    bench::obs_info(probe);
  }

  constexpr std::uint64_t kSeed = 0xFA07B000ULL;
  int wrong = 0, gave_up = 0;

  const LossCell clean = measure_under_loss(0.0, kSeed);
  wrong += clean.wrong;
  gave_up += clean.gave_up;
  bench::row("direct remote open, clean network", clean.mean_open_ms, 3.70);
#if V_FAULT_ENABLED
  for (const double loss : {0.05, 0.20}) {
    const LossCell cell = measure_under_loss(loss, kSeed);
    wrong += cell.wrong;
    gave_up += cell.gave_up;
    bench::row("open at " + std::to_string(static_cast<int>(loss * 100)) +
                   "% loss (" + std::to_string(cell.retransmits) +
                   " retransmits, " + std::to_string(cell.drops) + " drops)",
               cell.mean_open_ms);
  }
  fault::FaultStats dead_stats;
  const double noreply_ms = measure_noreply(kSeed, &dead_stats);
  bench::row("dead link: kNoReply after " +
                 std::to_string(dead_stats.retransmits) + " retransmits",
             noreply_ms);
  bench::note("");
  bench::note("retry policy: 10 ms initial timeout, x2 backoff, 80 ms cap,");
  bench::note("budget 6 (one cycle = 390 ms); the Rt's default recovery");
  bench::note("policy retries the open once, so a dead link surfaces after");
  bench::note("two full cycles.");
#else
  bench::note("V_FAULT=OFF build: fault-injection rows skipped (the");
  bench::note("subsystem is compiled out; only the baseline is priced).");
#endif
  if (wrong != 0 || gave_up != 0) {
    bench::note("FAILURE: " + std::to_string(wrong) + " wrong reply(ies), " +
                std::to_string(gave_up) + " open(s) never served");
    rc = 1;
  } else {
    bench::note("every open eventually returned correct bytes.");
  }

#if V_FAULT_ENABLED
  bench::headline("E11-fault-recovery",
                  "crash -> restart -> rebind latency (16 fault seeds)");
  constexpr int kSeeds = 16;
  std::vector<double> direct, prefixed;
  int rec_wrong = 0, not_recovered = 0;
  const double host_ms = bench::median_host_ms(repeats, [&] {
    direct.clear();
    prefixed.clear();
    rec_wrong = 0;
    not_recovered = 0;
    for (int i = 0; i < kSeeds; ++i) {
      const RecoveryCell cell = measure_recovery(kSeed + 0x100 + i);
      rec_wrong += cell.wrong;
      if (!cell.recovered) {
        ++not_recovered;
        continue;
      }
      direct.push_back(cell.direct_ms);
      prefixed.push_back(cell.prefixed_ms);
    }
  });
  const double direct_max =
      direct.empty() ? -1 : *std::max_element(direct.begin(), direct.end());
  const double prefixed_max =
      prefixed.empty() ? -1
                       : *std::max_element(prefixed.begin(), prefixed.end());
  bench::row("direct name, restart -> correct reply (median)",
             median(direct));
  bench::row("direct name, restart -> correct reply (max)", direct_max);
  bench::row("[prefix] name via prefix server (median)", median(prefixed));
  bench::row("[prefix] name via prefix server (max)", prefixed_max);
  bench::note("");
  bench::note("5% loss throughout; crash at 40 ms, restart at 90 ms as a");
  bench::note("fresh incarnation; client retries every 5 ms with the");
  bench::note("standard recovery policy (1 retry + multicast rebind).");
  if (not_recovered != 0 || rec_wrong != 0) {
    bench::note("FAILURE: " + std::to_string(not_recovered) +
                " seed(s) never recovered, " + std::to_string(rec_wrong) +
                " wrong reply(ies)");
    rc = 1;
  } else if (direct_max > 4000.0 || prefixed_max > 4000.0) {
    bench::note("FAILURE: recovery latency exceeds the 4 s bound");
    rc = 1;
  } else {
    bench::note("all " + std::to_string(kSeeds) +
                " seeds recovered within bound, zero wrong replies.");
  }
  std::printf("  host wall-clock per sweep: %.1f ms (median of %d)\n",
              host_ms, repeats);
#endif  // V_FAULT_ENABLED

  return bench::finish(json_path, rc);
}
