// E14: the production day — workload engine vs the sharded prefix fabric.
//
// A fleet of simulated client hosts (v::wload) plays one scripted day —
// warm-up, steady state, flash crowd, membership churn — against the global
// prefix mapping served by a shard fabric (servers/shard_fabric.hpp).  Two
// questions, straight from the ROADMAP's scale-out item:
//
//   1. THROUGHPUT: a single receptionist + worker team saturates at
//      workers / prefix_processing (E7).  Partitioning the prefix space
//      over S single-host teams must scale that ceiling; the acceptance
//      bar is >= 4x the single-team saturation throughput at 8 shards.
//   2. SAFETY UNDER CHURN: crash a shard mid-day and restart it.  The
//      handoff/handback choreography plus the PR 4 expected-generation
//      check must keep every reply either correct or refused — the content
//      oracle (Forest::content_for) must count ZERO wrong replies.
//
// Every number in the report is simulated time, so the JSON is
// byte-identical per seed; `--smoke` runs a shrunken day for the CI gate
// (scripts/ci.sh scale), which diffs two runs to prove exactly that.
#include "bench_util.hpp"

#include <memory>

#include "fault/fault.hpp"
#include "servers/shard_fabric.hpp"
#include "wload/driver.hpp"
#include "wload/forest.hpp"
#include "wload/scenario.hpp"

using namespace v;
using sim::kMillisecond;

namespace {

/// Flash-crowd p99 SLO budget (simulated ms): the hot shard saturates by
/// design, so the p99 open rides a full work queue.  The budget is the
/// full-queue drain bound — queue_cap (256) opens at the team's unit
/// service time (prefix_processing / workers = 3.5 ms / 4) is ~224 ms —
/// plus hops and one kBusy retry beat of slack.
constexpr double kFlashP99BudgetMs = 300.0;

struct CellParams {
  std::size_t shards = 1;
  std::size_t hosts = 128;
  bool churn = false;  ///< crash + restart a shard during the churn phase
};

struct DayResult {
  bench::JsonReport::ScaleCell cell;
  bool failed = false;
};

/// Run one full production day at one shard count and reduce it to a cell.
DayResult run_day(const std::string& label, const CellParams& params,
                  const wload::ForestSpec& forest_spec,
                  const wload::Scenario& scenario, std::uint64_t seed) {
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  if (seed != 0) dom.loop().enable_fuzz(seed);

  wload::Forest forest(forest_spec);
  // The storage pool must never be the bottleneck (the sweep measures the
  // NAMING fabric): 8 team-of-4 file servers clear ~10x the widest cell's
  // open+read+close demand.
  std::vector<std::unique_ptr<servers::FileServer>> fs;
  std::vector<servers::FileServer*> fs_ptrs;
  std::vector<ipc::ProcessId> fs_pids;
  for (int i = 0; i < 8; ++i) {
    ipc::Host& host = dom.add_host("fs" + std::to_string(i));
    fs.push_back(std::make_unique<servers::FileServer>(
        "fs" + std::to_string(i), servers::DiskModel::kMemory,
        /*register_service=*/false,
        naming::TeamConfig{.workers = 4, .queue_cap = 256}));
    servers::FileServer* srv = fs.back().get();
    fs_ptrs.push_back(srv);
    fs_pids.push_back(
        host.spawn("fs", [srv](ipc::Process p) { return srv->run(p); }));
  }

  // Deep queues: the 1-shard cell saturates by design, and the bench
  // measures queueing, not shedding.
  servers::ShardFabric fabric(
      dom, {.shards = params.shards,
            .team = {.workers = 4, .queue_cap = 256}});
  fabric.install(forest.install(fs_ptrs, fs_pids));

  // The plan is installed even on churn-free days: v::fault's transaction
  // tracking drops any reply that outlives its send, and a map fetch CAN
  // outlive its 100 ms group timeout when the flash crowd queues the
  // designated responder — the late reply must die, not complete the
  // client's next send.
  fault::FaultPlan plan(0xE14);
  if (params.churn) {
    // Kill one mid-map shard shortly after the churn phase opens; bring it
    // back two-thirds through, so the day exercises handoff AND handback
    // under full load.
    sim::SimDuration churn_start = 0;
    sim::SimDuration churn_len = 0;
    for (const wload::Phase& p : scenario.phases) {
      if (p.kind == wload::PhaseKind::kChurn) {
        churn_len = p.duration;
        break;
      }
      churn_start += p.duration;
    }
    const std::size_t victim = params.shards / 2;
    plan.crash_at(churn_start + churn_len / 8, fabric.host(victim).id(),
                  [&fabric, victim] { fabric.on_crash(victim); });
    plan.restart_at(churn_start + (churn_len * 2) / 3,
                    fabric.host(victim).id(),
                    [&fabric, victim] { fabric.on_restart(victim); });
  }
  dom.install_faults(plan);

  wload::Driver::Config cfg;
  cfg.hosts = params.hosts;
  cfg.fabric_group = fabric.group();
  cfg.scenario = scenario;
  wload::Driver driver(dom, forest, cfg);
  dom.run();

  DayResult result;
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    result.failed = true;
    return result;
  }
  if (driver.clients_done() != params.hosts) {
    std::fprintf(stderr, "BENCH FAILURE: %zu/%zu clients finished\n",
                 driver.clients_done(), params.hosts);
    result.failed = true;
    return result;
  }

  obs::LogHistogram all_ms;
  double flash_p99 = 0;
  for (const wload::PhaseStats& p : driver.phases()) {
    if (p.kind == wload::PhaseKind::kFlash) {
      flash_p99 = p.open_ms.percentile(0.99);
    }
  }
  // The cell's latency AND throughput both come from the first steady
  // window: that is the saturation-throughput measurement the scaling gate
  // compares (the flash and churn phases are scripted STRESSES — their
  // queueing says nothing about fabric capacity, and folding them in would
  // understate every multi-shard cell by the same hot-shard ceiling).
  double steady_per_s = 0;
  for (const wload::PhaseStats& p : driver.phases()) {
    if (p.kind == wload::PhaseKind::kSteady) {
      all_ms = p.open_ms;  // first steady window
      steady_per_s = p.throughput_per_s();
      break;
    }
  }

  bench::JsonReport::ScaleCell& cell = result.cell;
  cell.cell = label;
  cell.shards = params.shards;
  cell.hosts = params.hosts;
  cell.opens = driver.total_opens();
  cell.errors = driver.total_errors();
  cell.wrong = driver.wrong_replies();
  cell.throughput_per_s = steady_per_s;
  cell.p50_ms = all_ms.percentile(0.50);
  cell.p99_ms = all_ms.percentile(0.99);
  cell.flash_p99_ms = flash_p99;
  const svc::ShardRouter::Stats& rs = driver.router_stats();
  cell.map_fetches = rs.map_fetches;
  cell.stale_retries = rs.stale_retries;
  cell.noreply_retries = rs.noreply_retries;
  cell.handoffs = fabric.churn_stats().handoffs;
  cell.handbacks = fabric.churn_stats().handbacks;
  return result;
}

void print_cell(const bench::JsonReport::ScaleCell& c) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s: shards=%zu hosts=%zu  %.0f opens/s  p50 %.1f ms  "
                "p99 %.1f ms  flash p99 %.1f ms",
                c.cell.c_str(), c.shards, c.hosts, c.throughput_per_s,
                c.p50_ms, c.p99_ms, c.flash_p99_ms);
  bench::note(line);
  std::snprintf(line, sizeof(line),
                "    opens=%llu errors=%llu wrong=%llu fetches=%llu "
                "stale=%llu noreply=%llu handoffs=%llu handbacks=%llu",
                static_cast<unsigned long long>(c.opens),
                static_cast<unsigned long long>(c.errors),
                static_cast<unsigned long long>(c.wrong),
                static_cast<unsigned long long>(c.map_fetches),
                static_cast<unsigned long long>(c.stale_retries),
                static_cast<unsigned long long>(c.noreply_retries),
                static_cast<unsigned long long>(c.handoffs),
                static_cast<unsigned long long>(c.handbacks));
  bench::note(line);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  const bool smoke = bench::has_flag(argc, argv, "--smoke");

  bench::headline("E14", smoke
      ? "Production day at scale (smoke): shard sweep + churn"
      : "Production day at scale: shard sweep + churn");
  bench::run_info(seed, "SunWorkstation3Mbit");
  {
    const ipc::Domain probe;
    bench::obs_info(probe);
  }
  bench::note("workload: v::wload production day (warm-up, steady, flash");
  bench::note("crowd, churn, cool-down) against the sharded prefix fabric;");
  bench::note("every shard is one receptionist + 4-worker team on its own");
  bench::note("host.  Throughput counts successful opens over the whole day.");

  wload::ForestSpec forest_spec;
  wload::Scenario scenario = wload::Scenario::production_day(seed == 0 ? 1 : seed);
  std::vector<CellParams> sweep;
  CellParams churn_cell;
  if (smoke) {
    forest_spec.prefixes = 8;
    forest_spec.dirs_per_prefix = 2;
    forest_spec.files_per_dir = 2;
    scenario.think_min = 5 * kMillisecond;
    scenario.think_max = 15 * kMillisecond;
    scenario.phases = {
        {.kind = wload::PhaseKind::kWarmup, .duration = 200 * kMillisecond},
        {.kind = wload::PhaseKind::kSteady, .duration = 800 * kMillisecond},
        {.kind = wload::PhaseKind::kFlash, .duration = 500 * kMillisecond,
         .hot_fraction = 0.4, .hot_prefix = 0},
        {.kind = wload::PhaseKind::kChurn, .duration = 1000 * kMillisecond},
        {.kind = wload::PhaseKind::kSteady, .duration = 300 * kMillisecond},
    };
    sweep = {{.shards = 1, .hosts = 12}, {.shards = 2, .hosts = 12}};
    churn_cell = {.shards = 2, .hosts = 8, .churn = true};
  } else {
    // Production-scale forest.  The prefix count bounds the achievable
    // speedup: the hottest prefix maps to exactly ONE shard, so its Zipf
    // share p1 ~ 1/H(n, alpha) caps the curve at ~1/p1 regardless of shard
    // count.  256 prefixes at alpha 0.9 puts p1 at ~12%, far above the 4x
    // gate; 64 prefixes (p1 ~ 18%) measurably was not.
    forest_spec.prefixes = 256;
    forest_spec.dirs_per_prefix = 4;
    forest_spec.files_per_dir = 8;
    scenario.think_min = 8 * kMillisecond;
    scenario.think_max = 24 * kMillisecond;
    sweep = {{.shards = 1, .hosts = 256},
             {.shards = 2, .hosts = 256},
             {.shards = 4, .hosts = 256},
             {.shards = 8, .hosts = 256}};
    churn_cell = {.shards = 8, .hosts = 64, .churn = true};
  }

  double single_team = 0;
  double eight_shards = 0;
  double flash_p99_widest = 0;
  for (const CellParams& params : sweep) {
    char label[32];
    std::snprintf(label, sizeof(label), "shards=%zu", params.shards);
    const DayResult r = run_day(label, params, forest_spec, scenario, seed);
    if (!r.failed) print_cell(r.cell);
    if (r.failed || r.cell.wrong != 0 || r.cell.errors != 0) return 1;
    bench::JsonReport::instance().add_scale_cell(r.cell);
    bench::row(std::string(label) + "  steady p99", r.cell.p99_ms);
    if (params.shards == 1) single_team = r.cell.throughput_per_s;
    if (params.shards == sweep.back().shards) {
      eight_shards = r.cell.throughput_per_s;
      flash_p99_widest = r.cell.flash_p99_ms;
    }
  }

  const DayResult churn =
      run_day("churn", churn_cell, forest_spec, scenario, seed);
  if (churn.failed) return 1;
  print_cell(churn.cell);
  bench::JsonReport::instance().add_scale_cell(churn.cell);
  bench::row("churn  steady p99", churn.cell.p99_ms);

  char line[128];
  const double speedup = single_team > 0 ? eight_shards / single_team : 0;
  std::snprintf(line, sizeof(line),
                "throughput %zu shards vs 1: %.1fx%s", sweep.back().shards,
                speedup, smoke ? " (informational in smoke)"
                               : " (target >= 4x)");
  bench::note(line);
  std::snprintf(line, sizeof(line),
                "flash-crowd p99 at widest sweep: %.1f ms (budget %.0f ms)",
                flash_p99_widest, kFlashP99BudgetMs);
  bench::note(line);
  std::snprintf(line, sizeof(line),
                "churn day: %llu wrong replies, %llu exhausted opens "
                "(both must be 0)",
                static_cast<unsigned long long>(churn.cell.wrong),
                static_cast<unsigned long long>(churn.cell.errors));
  bench::note(line);

  // Smoke days are too small to saturate a team, so they gate determinism
  // and safety only; the full day also gates the scaling curve.
  const bool pass = (smoke || speedup >= 4.0) &&
                    flash_p99_widest <= kFlashP99BudgetMs &&
                    churn.cell.wrong == 0 && churn.cell.errors == 0 &&
                    churn.cell.handoffs == 1 && churn.cell.handbacks == 1;
  bench::note(pass ? "ACCEPTANCE: PASS" : "ACCEPTANCE: FAIL");
  return bench::finish(json_path, pass ? 0 : 1);
}
