// E7 / Figure 3 (paper sections 5.5-5.6): context directories versus name
// enumeration + per-object query.
//
// The paper argues context directories (a readable file of typed
// description records, fabricated on demand) beat the alternative — listing
// names and querying each object — because the per-object query "requires
// an additional operation for each object at considerable cost".  This
// bench regenerates that comparison as a function of context size, plus the
// cost the paper concedes: fabricating and shipping records nobody needed.
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E7 / Fig.3",
                  "context directory read vs enumerate + query-per-object");

  constexpr int kSizes[] = {1, 4, 16, 64, 256};
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& fsh = dom.add_host("fs1");
  servers::FileServer fs("fs");
  for (const int n : kSizes) {
    for (int i = 0; i < n; ++i) {
      fs.put_file("ctx" + std::to_string(n) + "/file" + std::to_string(i),
                  "object " + std::to_string(i));
    }
  }
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });

  struct RowData {
    int objects;
    double directory_ms;
    double queries_ms;
  };
  std::vector<RowData> rows;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    svc::Rt rt(self, {ipc::ProcessId::invalid(),
                      {fs_pid, naming::kDefaultContext}});
    for (const int n : kSizes) {
      const std::string ctx = "ctx" + std::to_string(n);

      // (a) open the context directory and read all records.
      auto t0 = self.now();
      auto records = co_await rt.list_context(ctx);
      const double directory = to_ms(self.now() - t0);

      // (b) the alternative design: use the names from (a) and invoke the
      // query operation on each object individually.
      t0 = self.now();
      for (const auto& rec : records.value()) {
        const std::string name = ctx + "/" + rec.name;
        (void)co_await rt.query(name);
      }
      const double queries = to_ms(self.now() - t0);
      rows.push_back({n, directory, queries});
    }
  });
  if (!ok) return 1;

  std::printf("  %-10s %18s %22s %10s\n", "objects", "ctx-directory (ms)",
              "enumerate+query (ms)", "ratio");
  for (const auto& r : rows) {
    std::printf("  %-10d %18.2f %22.2f %9.2fx\n", r.objects, r.directory_ms,
                r.queries_ms, r.queries_ms / r.directory_ms);
  }
  bench::note("");
  bench::note("shape: per-object queries pay a full message transaction +");
  bench::note("name interpretation each; the directory ships 4 records per");
  bench::note("512 B block, so the ratio grows with context size.");
  bench::note("");
  bench::note("the concession (section 5.6): a client that wanted ONE");
  bench::note("object's description still pays for the whole directory —");
  bench::note("compare row 'objects=256' directory cost against a single");
  bench::note("query; the paper floats pattern-matching as the fix.");
  return bench::finish(json_path);
}
