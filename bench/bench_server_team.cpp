// E7: multi-worker server teams — head-of-line blocking elimination.
//
// The serial CSNH run-loop services one request to completion before
// receiving the next, so a single slow operation (a bulk program load from
// a disk file server: ONE request, ~30 disk pages at 15 ms each) stalls
// every queued open behind it.  The receptionist + worker-team structure
// lets independent opens proceed on other workers while the slow transfer
// is in flight.
//
// Workload: 8 concurrent clients on ws1 against a disk file server on fs1
// reached through the context prefix server.
//   - 1 streamer  : repeated bulk reads of a 16 KB disk file ([d]big.dat)
//     — the slow remote transfer that is always in flight.
//   - 7 openers   : alternate a local open ([l]small.dat, memory file
//     server on ws1) and a remote open ([d]small.dat, the contended disk
//     server), with a short think time.
// Both the prefix server and the disk server run with the swept team size;
// open latency is sampled at the client across all opens.
//
// Expectation: p99 collapses once a second worker can overtake the bulk
// transfer; the issue's acceptance bar is >= 2x p99 improvement for
// 4 workers versus the serial loop.
#include "bench_util.hpp"

#include "naming/protocol.hpp"
#include "obs/metrics.hpp"
#include "svc/file.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

constexpr int kOpeners = 7;
constexpr int kIterations = 30;

struct TeamResult {
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  std::size_t samples = 0;
  std::uint64_t sheds = 0;
};

TeamResult measure(std::size_t workers, std::uint64_t seed) {
  ipc::Domain dom(ipc::CalibrationParams::SunWorkstation3Mbit());
  if (seed != 0) dom.loop().enable_fuzz(seed);
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");

  const naming::TeamConfig team{.workers = workers, .queue_cap = 128};
  servers::FileServer local_fs("local", servers::DiskModel::kMemory, false,
                               team);
  servers::FileServer disk_fs("disk", servers::DiskModel::kDisk, true, team);
  servers::ContextPrefixServer prefixes("user", true, team);
  local_fs.put_file("small.dat", "local bytes");
  disk_fs.put_file("small.dat", "remote bytes");
  disk_fs.put_file("big.dat", std::string(16 * 1024, 'x'));

  const auto local_pid =
      ws1.spawn("local-fs", [&](ipc::Process p) { return local_fs.run(p); });
  const auto disk_pid =
      fs1.spawn("disk-fs", [&](ipc::Process p) { return disk_fs.run(p); });
  prefixes.define("l", {.target = {local_pid, naming::kDefaultContext}});
  prefixes.define("d", {.target = {disk_pid, naming::kDefaultContext}});
  ws1.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  obs::LogHistogram open_ms;
  int done = 0;

  // The slow remote transfer, always in flight until the openers finish:
  // each bulk read is ONE request that holds a worker for every disk page.
  ws1.spawn("streamer", [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {local_pid, naming::kDefaultContext});
    while (done < kOpeners) {
      auto opened = co_await rt.open("[d]big.dat", naming::wire::kOpenRead);
      if (!opened.ok()) continue;
      svc::File f = opened.take();
      (void)co_await f.read_bulk();
      (void)co_await f.close();
    }
  });

  for (int c = 0; c < kOpeners; ++c) {
    ws1.spawn("opener", [&](ipc::Process self) -> Co<void> {
      auto rt = co_await svc::Rt::attach(
          self, {local_pid, naming::kDefaultContext});
      auto timed_open = [&](std::string_view name) -> Co<void> {
        const auto t0 = self.now();
        auto opened = co_await rt.open(name, naming::wire::kOpenRead);
        open_ms.record(to_ms(self.now() - t0));
        if (opened.ok()) {
          svc::File f = opened.take();
          (void)co_await f.close();
        }
      };
      for (int i = 0; i < kIterations; ++i) {
        co_await timed_open("[l]small.dat");
        co_await timed_open("[d]small.dat");
        co_await self.delay(5 * sim::kMillisecond);
      }
      ++done;
    });
  }

  dom.run();
  TeamResult result;
  if (dom.process_failures() != 0) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    return result;
  }
  result.p50 = open_ms.percentile(0.50);
  result.p99 = open_ms.percentile(0.99);
  result.mean = open_ms.mean();
  result.samples = open_ms.count();
  result.sheds = disk_fs.shed_count() + prefixes.shed_count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::headline("E7",
                  "Server teams: open latency vs worker count (8 clients)");
  bench::run_info(seed, "SunWorkstation3Mbit");
  {
    const ipc::Domain probe;
    bench::obs_info(probe);
  }
  bench::note("workload: 1 bulk streamer + 7 open/close clients,");
  bench::note("local memory server + remote disk server via prefix server;");
  bench::note("both CSNH servers run the swept team size.");
  bench::note("calibration: SunWorkstation3Mbit");

  double p99_serial = 0;
  double p99_four = 0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const TeamResult r = measure(workers, seed);
    if (r.samples == 0) return 1;
    char label[64];
    std::snprintf(label, sizeof(label), "workers=%zu  open p50", workers);
    bench::row(label, r.p50);
    std::snprintf(label, sizeof(label), "workers=%zu  open p99", workers);
    bench::row(label, r.p99);
    std::snprintf(label, sizeof(label), "workers=%zu  open mean", workers);
    bench::row(label, r.mean);
    if (r.sheds != 0) {
      std::snprintf(label, sizeof(label), "workers=%zu  sheds=%llu", workers,
                    static_cast<unsigned long long>(r.sheds));
      bench::note(label);
    }
    if (workers == 1) p99_serial = r.p99;
    if (workers == 4) p99_four = r.p99;
  }

  const double speedup = p99_four > 0 ? p99_serial / p99_four : 0;
  char line[96];
  std::snprintf(line, sizeof(line),
                "p99 improvement, 4 workers vs serial: %.1fx (target >= 2x)",
                speedup);
  bench::note(line);
  const bool pass = speedup >= 2.0;
  bench::note(pass ? "ACCEPTANCE: PASS" : "ACCEPTANCE: FAIL");
  return bench::finish(json_path, pass ? 0 : 1);
}
