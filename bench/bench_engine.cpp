// E12 (engine raw speed): events per wall-second and simulated message
// transactions per wall-second, on three workloads that bracket the
// simulator's hot paths:
//
//   timer-churn        pure EventLoop scheduling: a fixed population of
//                      self-rescheduling timers with a mixed delay profile
//                      (immediate wakes, sub-ms hops, long timeouts) — the
//                      queue and the action representation, nothing else.
//   ping-pong          kernel IPC: one client Send/Receive/Reply looping
//                      against a remote echo server — envelope delivery,
//                      pid lookup, fiber resumption.
//   resolution-storm   9 CSNH servers (1 prefix + 8 chained file servers),
//                      16 concurrent clients opening names of increasing
//                      forwarding depth — the full naming stack.
//
// Simulated times (sim_ms and the report rows) are deterministic and must
// stay bit-identical across engine changes; wall-clock throughput is the
// number this bench exists to track (BENCH_engine.json + the ci.sh `perf`
// stage, which fails on >25% regression of timer-churn events/s).
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

/// splitmix64: cheap deterministic delay source for the churn workload
/// (mt19937 call overhead would smear the number being measured).
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct WorkloadResult {
  std::uint64_t events = 0;  ///< events executed by the loop
  std::uint64_t txns = 0;    ///< simulated message transactions (Send→Reply)
  sim::SimTime sim_ns = 0;   ///< simulated time the workload covered
};

/// One self-rescheduling timer: fires, draws a new delay, re-arms until the
/// shared budget is spent.  The delay profile mixes the three populations a
/// real run schedules: immediate wakes (waker events), sub-millisecond
/// hops, and long timeouts.
void arm_timer(sim::EventLoop& loop, std::uint64_t& budget,
               std::uint64_t& rng) {
  if (budget == 0) return;
  --budget;
  const std::uint64_t r = next_rand(rng);
  sim::SimDuration delay;
  switch (r & 3) {
    case 0:
      delay = 0;  // immediate wake (the Waker path)
      break;
    case 1:
    case 2:
      delay = static_cast<sim::SimDuration>((r >> 2) % (2 * sim::kMillisecond));
      break;
    default:
      delay = static_cast<sim::SimDuration>((r >> 2) % (100 * sim::kMillisecond));
      break;
  }
  loop.schedule_after(delay,
                      [&loop, &budget, &rng] { arm_timer(loop, budget, rng); });
}

WorkloadResult run_timer_churn() {
  constexpr std::uint64_t kTimers = 1 << 14;
  constexpr std::uint64_t kEvents = 2'000'000;
  sim::EventLoop loop;
  std::uint64_t budget = kEvents;
  std::uint64_t rng = 0x1984'0601ULL;
  for (std::uint64_t i = 0; i < kTimers; ++i) arm_timer(loop, budget, rng);
  loop.run_until_idle();
  return {loop.events_executed(), 0, loop.now()};
}

/// timer-churn with a flight recorder attached to the loop's fire hook —
/// the ci.sh obs stage compares this against the plain run to prove the
/// always-on record path costs < 5% events/s (the recorder's whole
/// always-on claim, measured where it hurts most: a workload that is
/// nothing but dispatches).
WorkloadResult run_timer_churn_flight() {
#if V_TRACE_ENABLED
  constexpr std::uint64_t kTimers = 1 << 14;
  constexpr std::uint64_t kEvents = 2'000'000;
  sim::EventLoop loop;
  obs::FlightRecorder recorder;
  loop.set_fire_hook(
      [](void* ctx, sim::SimTime at) noexcept {
        static_cast<obs::FlightRecorder*>(ctx)->record(
            0, obs::FlightKind::kTimer, at, 0, 0, 0, 0);
      },
      &recorder);
  std::uint64_t budget = kEvents;
  std::uint64_t rng = 0x1984'0601ULL;
  for (std::uint64_t i = 0; i < kTimers; ++i) arm_timer(loop, budget, rng);
  loop.run_until_idle();
  return {loop.events_executed(), 0, loop.now()};
#else
  return run_timer_churn();  // no recorder in this preset: plain churn
#endif
}

WorkloadResult run_ping_pong() {
  // Sized so one run takes ~100 ms of wall time: on CPU-throttled CI
  // hosts a workload much shorter than the throttle period can be
  // swallowed whole by one stall, turning the 25% perf gate into a coin
  // flip.  (timer-churn never had the problem — 2M events amortize any
  // stall; the IPC workloads are sized to the same order.)
  constexpr int kTxns = 200'000;
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& srv = dom.add_host("srv1");
  const auto echo_pid =
      srv.spawn("echo", [](ipc::Process self) -> Co<void> {
        for (;;) {
          auto env = co_await self.receive();
          self.reply(msg::make_reply(ReplyCode::kOk), env.sender);
        }
      });
  bool done = false;
  ws.spawn("pinger", [&, echo_pid](ipc::Process self) -> Co<void> {
    msg::Message ping;
    ping.set_code(0x0200);  // above the protocol ranges' floor; not CSname
    for (int i = 0; i < kTxns; ++i) {
      (void)co_await self.send(ping, echo_pid);
    }
    done = true;
  });
  dom.run();
  if (dom.process_failures() != 0 || !done) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    std::exit(1);
  }
  return {dom.loop().events_executed(), dom.stats().messages_sent,
          dom.now()};
}

WorkloadResult run_resolution_storm() {
  constexpr int kServers = 8;  // file-server chain; +1 prefix server = 9
  constexpr int kClients = 16;
  constexpr int kOpensPerClient = 384;  // ~40 ms/run; see run_ping_pong
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
  for (int i = 0; i < kServers; ++i) {
    auto& host = dom.add_host("fs" + std::to_string(i));
    chain.push_back(std::make_unique<servers::FileServer>(
        "fs" + std::to_string(i), servers::DiskModel::kMemory, false));
    chain.back()->put_file("payload.dat", "end of the chain");
    pids.push_back(host.spawn("fs" + std::to_string(i),
                              [srv = chain.back().get()](ipc::Process p) {
                                return srv->run(p);
                              }));
  }
  for (int i = 0; i + 1 < kServers; ++i) {
    chain[static_cast<std::size_t>(i)]->put_link(
        "next", {pids[static_cast<std::size_t>(i) + 1],
                 naming::kDefaultContext});
  }
  servers::ContextPrefixServer prefixes("storm", /*register_service=*/false);
  prefixes.define("root", {.target = {pids[0], naming::kDefaultContext}});
  const auto prefix_pid = ws.spawn(
      "prefix-server", [&prefixes](ipc::Process p) { return prefixes.run(p); });

  int finished = 0;
  for (int c = 0; c < kClients; ++c) {
    ws.spawn("client" + std::to_string(c),
             [&, c](ipc::Process self) -> Co<void> {
               svc::Rt rt(self,
                          {prefix_pid, {pids[0], naming::kDefaultContext}});
               for (int i = 0; i < kOpensPerClient; ++i) {
                 std::string name = "[root]";
                 for (int h = 0; h < (i + c) % 6; ++h) name += "next/";
                 name += "payload.dat";
                 auto opened = co_await rt.open(name, naming::wire::kOpenRead);
                 if (!opened.ok()) {
                   std::fprintf(stderr, "BENCH FAILURE: storm open failed\n");
                   std::exit(1);
                 }
                 svc::File f = opened.take();
                 (void)co_await f.close();
               }
               ++finished;
             });
  }
  dom.run();
  if (dom.process_failures() != 0 || finished != kClients) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    std::exit(1);
  }
  return {dom.loop().events_executed(), dom.stats().messages_sent,
          dom.now()};
}

/// deep-forward: the fetch-once data path isolated.  Every open traverses
/// a fixed 3-forward chain (4 file servers) with a 64-255 byte name, so
/// the name rides NameSpan's pooled path and three downstream hops reuse
/// the first fetch's attachment.  resolution-storm mixes depths 0-5 and
/// short names; this workload is nothing but deep forwarding, which is
/// where fetch-once pays.
WorkloadResult run_deep_forward() {
  constexpr int kServers = 4;  // 3 forwards per open
  constexpr int kClients = 8;
  constexpr int kOpensPerClient = 640;  // ~30 ms/run; see run_ping_pong
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  std::vector<std::unique_ptr<servers::FileServer>> chain;
  std::vector<ipc::ProcessId> pids;
  const std::string hop = "fwd-" + std::string(44, 'x');  // 48-byte component
  const std::string leaf = "payload-" + std::string(24, 'y') + ".dat";
  for (int i = 0; i < kServers; ++i) {
    auto& host = dom.add_host("dfs" + std::to_string(i));
    chain.push_back(std::make_unique<servers::FileServer>(
        "dfs" + std::to_string(i), servers::DiskModel::kMemory, false));
    pids.push_back(host.spawn("dfs" + std::to_string(i),
                              [srv = chain.back().get()](ipc::Process p) {
                                return srv->run(p);
                              }));
  }
  chain.back()->put_file(leaf, "four servers deep");
  for (int i = 0; i + 1 < kServers; ++i) {
    chain[static_cast<std::size_t>(i)]->put_link(
        hop, {pids[static_cast<std::size_t>(i) + 1], naming::kDefaultContext});
  }
  servers::ContextPrefixServer prefixes("deep", /*register_service=*/false);
  prefixes.define("root", {.target = {pids[0], naming::kDefaultContext}});
  const auto prefix_pid = ws.spawn(
      "prefix-server", [&prefixes](ipc::Process p) { return prefixes.run(p); });

  std::string name = "[root]";
  for (int h = 0; h + 1 < kServers; ++h) name += hop + "/";
  name += leaf;

  int finished = 0;
  for (int c = 0; c < kClients; ++c) {
    ws.spawn("client" + std::to_string(c),
             [&](ipc::Process self) -> Co<void> {
               svc::Rt rt(self,
                          {prefix_pid, {pids[0], naming::kDefaultContext}});
               for (int i = 0; i < kOpensPerClient; ++i) {
                 auto opened = co_await rt.open(name, naming::wire::kOpenRead);
                 if (!opened.ok()) {
                   std::fprintf(stderr,
                                "BENCH FAILURE: deep-forward open failed\n");
                   std::exit(1);
                 }
                 svc::File f = opened.take();
                 (void)co_await f.close();
               }
               ++finished;
             });
  }
  dom.run();
  if (dom.process_failures() != 0 || finished != kClients) {
    std::fprintf(stderr, "BENCH FAILURE: %s\n", dom.first_failure().c_str());
    std::exit(1);
  }
  return {dom.loop().events_executed(), dom.stats().messages_sent,
          dom.now()};
}

/// Report one workload's numbers (stdout line + JSON engine block +
/// deterministic coverage row).
void report_workload(const std::string& name, const WorkloadResult& result,
                     double wall_ms) {
  const double wall_s = wall_ms / 1000.0;
  const double events_per_s =
      wall_s > 0 ? static_cast<double>(result.events) / wall_s : 0;
  const double txns_per_s =
      wall_s > 0 ? static_cast<double>(result.txns) / wall_s : 0;
  std::printf(
      "  %-18s %9llu events %8llu txns  %8.1f ms wall  %10.0f ev/s  %9.0f "
      "txn/s\n",
      name.c_str(), static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.txns), wall_ms, events_per_s,
      txns_per_s);
  bench::JsonReport::instance().add_engine_workload(
      name, result.events, result.txns, wall_ms, to_ms(result.sim_ns));
  // The deterministic half of the report: simulated coverage per workload
  // (bit-identical across engine changes; regressions here mean the engine
  // changed BEHAVIOR, not just speed).
  bench::row(name + " simulated coverage", to_ms(result.sim_ns));
}

/// Run `fn` `repeats` times; report the run with MEDIAN wall time (robust
/// against scheduler noise).
template <typename Fn>
void measure(const std::string& name, int repeats, Fn&& fn) {
  WorkloadResult result;
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    result = fn();
    const auto t1 = std::chrono::steady_clock::now();
    walls.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(walls.begin(), walls.end());
  report_workload(name, result, walls[walls.size() / 2]);
}

/// The flight-recorder overhead pair: alternate plain and recorder-attached
/// timer-churn and report each with its MIN wall time.  Interleaving makes
/// both see the same CPU-frequency drift; min discards one-sided scheduler
/// noise.  The surviving flight/plain ratio is the recorder's own cost,
/// which ci.sh obs gates at 5%.
void measure_flight_pair(int repeats) {
  WorkloadResult plain_result{};
  WorkloadResult flight_result{};
  double plain_wall = 0.0;
  double flight_wall = 0.0;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    plain_result = run_timer_churn();
    auto t1 = std::chrono::steady_clock::now();
    const double pw =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || pw < plain_wall) plain_wall = pw;

    t0 = std::chrono::steady_clock::now();
    flight_result = run_timer_churn_flight();
    t1 = std::chrono::steady_clock::now();
    const double fw =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || fw < flight_wall) flight_wall = fw;
  }
  report_workload("timer-churn", plain_result, plain_wall);
  report_workload("timer-churn-flight", flight_result, flight_wall);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const int repeats = std::max(3, bench::repeat_from_args(argc, argv));
  const bool flight = bench::has_flag(argc, argv, "--flight");
  bench::headline("E12", "engine raw speed: events and message transactions "
                         "per wall-second");
  bench::run_info(0, "SunWorkstation3Mbit");
  bench::JsonReport::instance().set_obs_info(1.0, obs::kDefaultFlightCapacity);
  if (flight) {
    std::printf("  --flight: timer-churn-flight interleaves timer-churn "
                "with a recorder on the fire hook (min wall of the pair)\n");
  }
  std::printf("  %d repeats per workload, median wall time reported\n\n",
              repeats);
  if (flight) {
    measure_flight_pair(repeats);
  } else {
    measure("timer-churn", repeats, run_timer_churn);
  }
  measure("ping-pong", repeats, run_ping_pong);
  measure("resolution-storm", repeats, run_resolution_storm);
  measure("deep-forward", repeats, run_deep_forward);
  bench::note("wall-clock throughput is machine-dependent; the ci.sh perf "
              "stage gates events_per_wall_second against BENCH_engine.json "
              "with 25% tolerance");
  return bench::finish(json_path);
}
