// E2 (paper section 3.1): bulk transfer / program loading.  "Using MoveTo
// for program loading from a network file server into a diskless SUN
// workstation (assuming the program text is already in the file server's
// memory buffers), a 64 KB program can be loaded in 338 ms on the 3 Mbit
// Ethernet."
//
// Reports the raw MoveTo cost model, the full protocol path (open +
// bulk-read + close) and a size sweep, plus the end-to-end team-server
// program load.
#include "bench_util.hpp"
#include "naming/protocol.hpp"
#include "servers/team_server.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E2", "bulk MoveTo transfer / program loading");

  const auto params = ipc::CalibrationParams::SunWorkstation3Mbit();
  bench::note("raw MoveTo cost model (one transfer, remote):");
  for (const std::size_t kb : {4, 16, 64, 128, 256}) {
    const double ms = to_ms(params.move_to_cost(kb * 1024, false));
    bench::row("MoveTo " + std::to_string(kb) + " KB",
               ms, kb == 64 ? 338.0 : -1);
  }
  bench::note("");

  ipc::Domain dom;
  auto& ws = dom.add_host("diskless-sun");
  auto& fsh = dom.add_host("vax-fs");
  servers::FileServer fs("programs");  // memory-buffered, as the paper says
  fs.put_file("bin/prog64", std::string(64 * 1024, 'P'));
  for (const std::size_t kb : {4, 16, 128}) {
    fs.put_file("bin/prog" + std::to_string(kb), std::string(kb * 1024, 'P'));
  }
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  servers::ContextPrefixServer prefixes;
  prefixes.define("bin", {.target = {fs_pid, fs.context_of("bin")}});
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });
  servers::TeamServer team({fs_pid, naming::kDefaultContext});
  const auto team_pid =
      ws.spawn("team", [&](ipc::Process p) { return team.run(p); });

  struct RowData {
    std::string label;
    double ms;
    double paper;
  };
  std::vector<RowData> rows;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    for (const std::size_t kb : {std::size_t{4}, std::size_t{16},
                                 std::size_t{64}, std::size_t{128}}) {
      const std::string name = "bin/prog" + std::to_string(kb);
      auto opened = co_await rt.open(name, naming::wire::kOpenRead);
      svc::File f = opened.take();
      const auto t0 = self.now();
      auto bytes = co_await f.read_bulk();
      const double ms = to_ms(self.now() - t0);
      (void)co_await f.close();
      rows.push_back({"protocol bulk read, " + std::to_string(kb) + " KB (" +
                          std::to_string(bytes.value().size()) + " B)",
                      ms, kb == 64 ? 338.0 : -1.0});
    }
    // End-to-end program load through the team server (resolves the name
    // via the prefix server, opens, bulk-reads, registers the program).
    const auto t0 = self.now();
    auto loaded = co_await servers::TeamServer::load_program(
        self, team_pid, "[bin]prog64");
    rows.push_back({"team-server LoadProgram [bin]prog64 end-to-end",
                    to_ms(self.now() - t0), -1.0});
    if (!loaded.ok()) {
      rows.back().label += " (FAILED)";
    }
  });
  if (!ok) return 1;
  for (const auto& r : rows) bench::row(r.label, r.ms, r.paper);
  bench::note("");
  bench::note("shape check: the 64 KB protocol path sits within a few");
  bench::note("percent of the paper's 338 ms; throughput is CPU-bound at");
  bench::note("the SUN's packet-write rate, as the paper observes.");
  return bench::finish(json_path);
}
