// E4 (paper section 6): THE headline table — Open latency in the current
// context versus through the context prefix server, for local and remote
// target servers.
//
//   paper:  1.21 ms  direct, server local
//           3.70 ms  direct, server remote
//           5.14 ms  via context prefix, server local
//           7.69 ms  via context prefix, server remote
//   and the prefix deltas 3.94 / 3.99 ms are "identical within the limits
//   of experimental error" because the prefix server is always local.
//
// The table is regenerated for the SUN calibration (absolute comparison)
// and for a deliberately different calibration (structural claim only).
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

struct Matrix {
  double direct_local = 0, direct_remote = 0;
  double prefix_local = 0, prefix_remote = 0;
};

Matrix measure(ipc::CalibrationParams params) {
  ipc::Domain dom(params);
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer local_fs("local", servers::DiskModel::kMemory, false);
  servers::FileServer remote_fs("remote");
  local_fs.put_file("f.dat", "local bytes");
  remote_fs.put_file("f.dat", "remote bytes");
  servers::ContextPrefixServer prefixes;
  const auto local_pid =
      ws1.spawn("local-fs", [&](ipc::Process p) { return local_fs.run(p); });
  const auto remote_pid =
      fs1.spawn("remote-fs", [&](ipc::Process p) { return remote_fs.run(p); });
  prefixes.define("l", {.target = {local_pid, naming::kDefaultContext}});
  prefixes.define("r", {.target = {remote_pid, naming::kDefaultContext}});
  ws1.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  Matrix m;
  bench::run_client(dom, ws1, [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {local_pid, naming::kDefaultContext});
    // The paper's number is the Open alone; closes happen outside the
    // timed window.
    auto time_open_only = [&](std::string_view name) -> Co<double> {
      constexpr int kIters = 50;
      sim::SimDuration total = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto t0 = self.now();
        auto opened = co_await rt.open(name, naming::wire::kOpenRead);
        total += self.now() - t0;
        svc::File f = opened.take();
        (void)co_await f.close();
      }
      co_return to_ms(total) / kIters;
    };
    rt.set_current({local_pid, naming::kDefaultContext});
    m.direct_local = co_await time_open_only("f.dat");
    rt.set_current({remote_pid, naming::kDefaultContext});
    m.direct_remote = co_await time_open_only("f.dat");
    m.prefix_local = co_await time_open_only("[l]f.dat");
    m.prefix_remote = co_await time_open_only("[r]f.dat");
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E4", "Open latency matrix (paper section 6)");

  bench::note("calibration: SunWorkstation3Mbit");
  const Matrix sun = measure(ipc::CalibrationParams::SunWorkstation3Mbit());
  bench::row("Open, current context, server local", sun.direct_local, 1.21);
  bench::row("Open, current context, server remote", sun.direct_remote, 3.70);
  bench::row("Open via context prefix, server local", sun.prefix_local, 5.14);
  bench::row("Open via context prefix, server remote", sun.prefix_remote,
             7.69);
  bench::row("prefix delta, local target",
             sun.prefix_local - sun.direct_local, 3.94);
  bench::row("prefix delta, remote target",
             sun.prefix_remote - sun.direct_remote, 3.99);
  bench::note("");

  bench::note("calibration: SlowNetworkFastCpu (structural check only)");
  const Matrix alt = measure(ipc::CalibrationParams::SlowNetworkFastCpu());
  bench::row("Open, current context, server local", alt.direct_local);
  bench::row("Open, current context, server remote", alt.direct_remote);
  bench::row("Open via context prefix, server local", alt.prefix_local);
  bench::row("Open via context prefix, server remote", alt.prefix_remote);
  bench::row("prefix delta, local target",
             alt.prefix_local - alt.direct_local);
  bench::row("prefix delta, remote target",
             alt.prefix_remote - alt.direct_remote);
  bench::note("");
  bench::note("key reproduction: the two deltas are equal on BOTH");
  bench::note("calibrations — the prefix-server cost is independent of the");
  bench::note("target's locality because the prefix server is always local.");
  return bench::finish(json_path);
}
