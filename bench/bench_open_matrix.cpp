// E4 (paper section 6): THE headline table — Open latency in the current
// context versus through the context prefix server, for local and remote
// target servers.
//
//   paper:  1.21 ms  direct, server local
//           3.70 ms  direct, server remote
//           5.14 ms  via context prefix, server local
//           7.69 ms  via context prefix, server remote
//   and the prefix deltas 3.94 / 3.99 ms are "identical within the limits
//   of experimental error" because the prefix server is always local.
//
// The table is regenerated for the SUN calibration (absolute comparison)
// and for a deliberately different calibration (structural claim only).
#include "bench_util.hpp"
#include "naming/protocol.hpp"
#include "wload/forest.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

struct Matrix {
  double direct_local = 0, direct_remote = 0;
  double prefix_local = 0, prefix_remote = 0;
};

/// Iterations per timed cell (`--opens`) and synthesized wload-forest
/// files pre-populating each server (`--files`; sizes the FlatMap the
/// timed opens search).  Defaults reproduce the paper table byte-for-byte.
struct Load {
  int opens = 50;
  std::size_t files = 0;
};

Matrix measure(ipc::CalibrationParams params, const Load& load) {
  ipc::Domain dom(params);
  auto& ws1 = dom.add_host("ws1");
  auto& fs1 = dom.add_host("fs1");
  servers::FileServer local_fs("local", servers::DiskModel::kMemory, false);
  servers::FileServer remote_fs("remote");
  local_fs.put_file("f.dat", "local bytes");
  remote_fs.put_file("f.dat", "remote bytes");
  if (load.files != 0) {
    // Background population from the wload generator: one prefix, enough
    // leaves, names stripped of their "[p]" syntax for put_file.
    const wload::Forest forest({.prefixes = 1,
                                .dirs_per_prefix = load.files,
                                .files_per_dir = 1,
                                .name_min = 0});
    for (std::size_t f = 0; f < forest.file_count(); ++f) {
      const std::string& full = forest.name(f);
      const std::string path = full.substr(full.find(']') + 1);
      local_fs.put_file(path, wload::Forest::content_for(full));
      remote_fs.put_file(path, wload::Forest::content_for(full));
    }
  }
  servers::ContextPrefixServer prefixes;
  const auto local_pid =
      ws1.spawn("local-fs", [&](ipc::Process p) { return local_fs.run(p); });
  const auto remote_pid =
      fs1.spawn("remote-fs", [&](ipc::Process p) { return remote_fs.run(p); });
  prefixes.define("l", {.target = {local_pid, naming::kDefaultContext}});
  prefixes.define("r", {.target = {remote_pid, naming::kDefaultContext}});
  ws1.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  Matrix m;
  bench::run_client(dom, ws1, [&](ipc::Process self) -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {local_pid, naming::kDefaultContext});
    // The paper's number is the Open alone; closes happen outside the
    // timed window.
    auto time_open_only = [&](std::string_view name) -> Co<double> {
      const int kIters = load.opens;
      sim::SimDuration total = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto t0 = self.now();
        auto opened = co_await rt.open(name, naming::wire::kOpenRead);
        total += self.now() - t0;
        svc::File f = opened.take();
        (void)co_await f.close();
      }
      co_return to_ms(total) / kIters;
    };
    rt.set_current({local_pid, naming::kDefaultContext});
    m.direct_local = co_await time_open_only("f.dat");
    rt.set_current({remote_pid, naming::kDefaultContext});
    m.direct_remote = co_await time_open_only("f.dat");
    m.prefix_local = co_await time_open_only("[l]f.dat");
    m.prefix_remote = co_await time_open_only("[r]f.dat");
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E4", "Open latency matrix (paper section 6)");

  Load load;
  const std::string opens_arg = bench::flag_value(argc, argv, "--opens");
  const std::string files_arg = bench::flag_value(argc, argv, "--files");
  if (!opens_arg.empty()) load.opens = std::stoi(opens_arg);
  if (!files_arg.empty()) {
    load.files = static_cast<std::size_t>(std::stoul(files_arg));
  }

  bench::note("calibration: SunWorkstation3Mbit");
  const Matrix sun = measure(ipc::CalibrationParams::SunWorkstation3Mbit(), load);
  bench::row("Open, current context, server local", sun.direct_local, 1.21);
  bench::row("Open, current context, server remote", sun.direct_remote, 3.70);
  bench::row("Open via context prefix, server local", sun.prefix_local, 5.14);
  bench::row("Open via context prefix, server remote", sun.prefix_remote,
             7.69);
  bench::row("prefix delta, local target",
             sun.prefix_local - sun.direct_local, 3.94);
  bench::row("prefix delta, remote target",
             sun.prefix_remote - sun.direct_remote, 3.99);
  bench::note("");

  bench::note("calibration: SlowNetworkFastCpu (structural check only)");
  const Matrix alt = measure(ipc::CalibrationParams::SlowNetworkFastCpu(), load);
  bench::row("Open, current context, server local", alt.direct_local);
  bench::row("Open, current context, server remote", alt.direct_remote);
  bench::row("Open via context prefix, server local", alt.prefix_local);
  bench::row("Open via context prefix, server remote", alt.prefix_remote);
  bench::row("prefix delta, local target",
             alt.prefix_local - alt.direct_local);
  bench::row("prefix delta, remote target",
             alt.prefix_remote - alt.direct_remote);
  bench::note("");
  bench::note("key reproduction: the two deltas are equal on BOTH");
  bench::note("calibrations — the prefix-server cost is independent of the");
  bench::note("target's locality because the prefix server is always local.");
  return bench::finish(json_path);
}
