// Ablation (paper section 2.2): client-side name caching.
//
// "Caching the name in the client would introduce inconsistency problems
// and only benefit the few applications that reuse names."  This bench
// quantifies both halves of that sentence:
//   * benefit as a function of directory reuse (high-reuse, mixed and
//     no-reuse workloads, deep and shallow paths);
//   * the consistency ledger under server churn — which, now that cached
//     bindings are generation-validated (PROTOCOL.md 11), shows staleness
//     DETECTED and re-resolved where the unvalidated cache silently served
//     an impostor's bytes.
#include "bench_util.hpp"
#include "naming/protocol.hpp"
#include "svc/name_cache.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

struct Workload {
  const char* label;
  int directories;  // names drawn from this many distinct directories
  int opens;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("ablation", "client name cache (section 2.2)");

  constexpr Workload kWorkloads[] = {
      {"high reuse: 1 directory x 64 opens", 1, 64},
      {"moderate reuse: 8 directories x 8 opens", 8, 64},
      {"no reuse: 64 directories x 1 open", 64, 64},
      {"high reuse through [prefix] names", -1, 64},
  };

  std::printf("  %-44s %12s %12s %8s\n", "workload (deep remote paths)",
              "uncached", "cached", "speedup");
  for (const auto& wl : kWorkloads) {
    double uncached_ms = 0, cached_ms = 0;
    std::uint64_t hits = 0;
    for (const bool use_cache : {false, true}) {
      const bool prefixed = wl.directories < 0;
      const int dirs = prefixed ? 1 : wl.directories;
      ipc::Domain dom;
      auto& ws = dom.add_host("ws1");
      auto& fsh = dom.add_host("fs1");
      servers::FileServer fs("fs");
      for (int d = 0; d < dirs; ++d) {
        for (int f = 0; f < (wl.opens / dirs); ++f) {
          fs.put_file("projects/v/deep/dir" + std::to_string(d) + "/f" +
                          std::to_string(f) + ".dat",
                      "x");
        }
      }
      const auto fs_pid =
          fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
      servers::ContextPrefixServer prefixes;
      prefixes.define("fs", {.target = {fs_pid, naming::kDefaultContext}});
      ws.spawn("prefix-server",
               [&](ipc::Process p) { return prefixes.run(p); });
      double total = 0;
      bench::run_client(dom, ws, [&](ipc::Process self) -> Co<void> {
        auto rt = co_await svc::Rt::attach(
            self, {fs_pid, naming::kDefaultContext});
        svc::NameCache cache;
        const auto t0 = self.now();
        for (int i = 0; i < wl.opens; ++i) {
          const int d = i % dirs;
          const int f = i / dirs;
          const std::string name = (prefixed ? "[fs]" : "") +
                                   ("projects/v/deep/dir" +
                                    std::to_string(d) + "/f" +
                                    std::to_string(f) + ".dat");
          auto opened =
              use_cache
                  ? co_await rt.open_cached(cache, name,
                                            naming::wire::kOpenRead)
                  : co_await rt.open(name, naming::wire::kOpenRead);
          if (opened.ok()) {
            svc::File file = opened.take();
            (void)co_await file.close();
          }
        }
        total = to_ms(self.now() - t0) / wl.opens;
        if (use_cache) hits = cache.hits();
      });
      (use_cache ? cached_ms : uncached_ms) = total;
    }
    std::printf("  %-44s %9.2f ms %9.2f ms %7.2fx  (%llu hits)\n", wl.label,
                uncached_ms, cached_ms, uncached_ms / cached_ms,
                static_cast<unsigned long long>(hits));
  }

  bench::note("");
  bench::note("consistency ledger under churn (64 opens, server restarted");
  bench::note("mid-run with recycled context ids):");
  {
    ipc::Domain dom;
    auto& ws = dom.add_host("ws1");
    auto& fsh = dom.add_host("fs1");
    servers::FileServer fs_v1("fs-v1", servers::DiskModel::kMemory, false);
    servers::FileServer fs_v2("fs-v2", servers::DiskModel::kMemory, false);
    for (int f = 0; f < 32; ++f) {
      fs_v1.put_file("data/f" + std::to_string(f) + ".dat", "GENUINE");
      fs_v2.put_file("data/f" + std::to_string(f) + ".dat", "IMPOSTOR");
    }
    const auto v1_pid =
        fsh.spawn("fs-v1", [&](ipc::Process p) { return fs_v1.run(p); });
    ipc::ProcessId v2_pid;

    int wrong = 0, errors = 0, correct = 0;
    std::uint64_t stale = 0, fallbacks = 0;
    bench::run_client(dom, ws, [&](ipc::Process self) -> Co<void> {
      svc::Rt rt(self, {ipc::ProcessId::invalid(),
                        {v1_pid, naming::kDefaultContext}});
      svc::NameCache cache;
      for (int i = 0; i < 64; ++i) {
        if (i == 32) {
          // Mid-run restart; the stale cache entry gets rewritten to the
          // recycled pid with identical context ids (section 4.1: pids are
          // "not unique in time") — but it still quotes v1's generation.
          fsh.crash();
          fsh.restart();
          v2_pid = fsh.spawn("fs-v2",
                             [&](ipc::Process p) { return fs_v2.run(p); });
          rt.set_current({v2_pid, naming::kDefaultContext});
          if (auto entry = cache.find("data")) {
            auto rewritten = *entry;
            rewritten.target.server = v2_pid;
            cache.put("data", rewritten);
          }
          co_await self.delay(sim::kMillisecond);
        }
        const std::string name =
            "data/f" + std::to_string(i % 32) + ".dat";
        auto opened =
            co_await rt.open_cached(cache, name, naming::wire::kOpenRead);
        if (!opened.ok()) {
          ++errors;
          continue;
        }
        svc::File file = opened.take();
        auto bytes = co_await file.read_bulk();
        (void)co_await file.close();
        // Ground truth of the CURRENT name space: v1 content before the
        // restart, v2 content after.
        const char expected = i < 32 ? 'G' : 'I';
        if (bytes.ok() && !bytes.value().empty() &&
            static_cast<char>(bytes.value()[0]) == expected) {
          ++correct;
        } else {
          ++wrong;  // served through a binding that no longer holds
        }
      }
      stale = cache.stale();
      fallbacks = cache.fallbacks();
    });
    std::printf("  correct results:                  %d/64\n", correct);
    std::printf("  open errors surfaced:             %d/64\n", errors);
    std::printf("  stale bindings refused + re-resolved: %llu\n",
                static_cast<unsigned long long>(stale));
    std::printf("  transparent fallbacks:            %llu\n",
                static_cast<unsigned long long>(fallbacks));
    std::printf("  SILENTLY WRONG results:           %d/64\n", wrong);
  }
  bench::note("");
  bench::note("shape: the cache only pays off when directories are reused");
  bench::note("(left column).  Under churn, the recycled binding is refused");
  bench::note("with STALE_CONTEXT — the fresh-incarnation generation floor");
  bench::note("can never match a stale stamp — and the open transparently");
  bench::note("re-resolves: 64/64 correct, zero silent wrong answers, at a");
  bench::note("one-refusal latency cost instead of a wrong-data cost.");
  return bench::finish(json_path);
}
