// E5 (paper section 6): the context prefix server's footprint and costs.
// Paper: "4.5 kilobytes of code plus 2.6 kilobytes of data (mostly space
// reserved for its context directory)".  We report the table's resident
// size across entry counts, the per-request processing time (the paper's
// 3.94/3.99 ms delta), and the costs of the optional Add/DeleteContextName
// operations, including logical (GetPid-at-use) entries.
#include "bench_util.hpp"
#include "naming/protocol.hpp"
#include "wload/forest.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

namespace {

/// Compatibility-mode forest ("<stem>0", "<stem>1", ...): the wload
/// generator is the single source of synthesized names, here and in the
/// production-day bench (E14).
wload::Forest name_forest(std::size_t count, std::string stem) {
  return wload::Forest({.prefixes = count,
                        .dirs_per_prefix = 1,
                        .files_per_dir = 1,
                        .name_min = 0,
                        .prefix_stem = std::move(stem)});
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E5", "context prefix server: footprint and operation "
                        "costs");
  // `--entries N` widens the footprint sweep; `--opens N` sets the
  // per-operation iteration count.  Defaults reproduce the paper table.
  const std::string entries_arg = bench::flag_value(argc, argv, "--entries");
  const std::string opens_arg = bench::flag_value(argc, argv, "--opens");
  const int iters = opens_arg.empty() ? 40 : std::stoi(opens_arg);

  // --- footprint ------------------------------------------------------------
  bench::note("prefix table resident bytes (paper data segment: 2.6 KB):");
  std::vector<int> sweep = {4, 8, 16, 32, 64};
  if (!entries_arg.empty()) sweep.push_back(std::stoi(entries_arg));
  for (const int entries : sweep) {
    const wload::Forest names =
        name_forest(static_cast<std::size_t>(entries), "prefix");
    servers::ContextPrefixServer table("user");
    for (int i = 0; i < entries; ++i) {
      table.define(names.prefix(static_cast<std::size_t>(i)),
                   {.target = {ipc::ProcessId::make(1, 1),
                               naming::kDefaultContext}});
    }
    std::printf("  %3d entries: %5zu bytes (%.1f bytes/entry)\n", entries,
                table.table_bytes(),
                static_cast<double>(table.table_bytes()) / entries);
  }
  bench::note("");

  // --- operation costs ---------------------------------------------------------
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& fsh = dom.add_host("fs1");
  servers::FileServer fs("fs");
  fs.put_file("data/f.dat", "payload");
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  servers::ContextPrefixServer prefixes("user");
  prefixes.define("data", {.target = {fs_pid, fs.context_of("data")}});
  servers::ContextPrefixServer::Entry logical;
  logical.logical = true;
  logical.service = ipc::ServiceId::kStorageServer;
  prefixes.define("storage", logical);
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  double open_pinned = 0, open_logical = 0, add_ms = 0, del_ms = 0,
         list_ms = 0;
  const wload::Forest tmp_names =
      name_forest(static_cast<std::size_t>(iters), "tmp");
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    const int kIters = iters;
    auto t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      auto opened =
          co_await rt.open("[data]f.dat", naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    open_pinned = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      auto opened = co_await rt.open("[storage]data/f.dat",
                                     naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    open_logical = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string& name = tmp_names.prefix(static_cast<std::size_t>(i));
      const naming::ContextPair target{fs_pid, naming::kDefaultContext};
      (void)co_await rt.add_prefix(name, target);
    }
    add_ms = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    auto records = co_await rt.list_context("[]");
    list_ms = to_ms(self.now() - t0);
    std::printf("  (prefix context directory lists %zu entries)\n",
                records.value().size());

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      (void)co_await rt.delete_prefix(
          tmp_names.prefix(static_cast<std::size_t>(i)));
    }
    del_ms = to_ms(self.now() - t0) / kIters;
  });
  if (!ok) return 1;

  bench::row("open through pinned prefix + close", open_pinned);
  bench::row("open through LOGICAL prefix (GetPid each use)", open_logical);
  bench::row("AddContextName", add_ms);
  bench::row("DeleteContextName", del_ms);
  bench::row("read the whole prefix context directory", list_ms);
  bench::note("");
  bench::note("the logical-entry premium is the per-use GetPid; the paper");
  bench::note("accepts it to keep generic service names valid across");
  bench::note("server restarts (section 6).");
  return bench::finish(json_path);
}
