// E5 (paper section 6): the context prefix server's footprint and costs.
// Paper: "4.5 kilobytes of code plus 2.6 kilobytes of data (mostly space
// reserved for its context directory)".  We report the table's resident
// size across entry counts, the per-request processing time (the paper's
// 3.94/3.99 ms delta), and the costs of the optional Add/DeleteContextName
// operations, including logical (GetPid-at-use) entries.
#include "bench_util.hpp"
#include "naming/protocol.hpp"

using namespace v;
using sim::Co;
using sim::to_ms;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::headline("E5", "context prefix server: footprint and operation "
                        "costs");

  // --- footprint ------------------------------------------------------------
  bench::note("prefix table resident bytes (paper data segment: 2.6 KB):");
  for (const int entries : {4, 8, 16, 32, 64}) {
    servers::ContextPrefixServer table("user");
    for (int i = 0; i < entries; ++i) {
      table.define("prefix" + std::to_string(i),
                   {.target = {ipc::ProcessId::make(1, 1),
                               naming::kDefaultContext}});
    }
    std::printf("  %3d entries: %5zu bytes (%.1f bytes/entry)\n", entries,
                table.table_bytes(),
                static_cast<double>(table.table_bytes()) / entries);
  }
  bench::note("");

  // --- operation costs ---------------------------------------------------------
  ipc::Domain dom;
  auto& ws = dom.add_host("ws1");
  auto& fsh = dom.add_host("fs1");
  servers::FileServer fs("fs");
  fs.put_file("data/f.dat", "payload");
  const auto fs_pid =
      fsh.spawn("fs", [&](ipc::Process p) { return fs.run(p); });
  servers::ContextPrefixServer prefixes("user");
  prefixes.define("data", {.target = {fs_pid, fs.context_of("data")}});
  servers::ContextPrefixServer::Entry logical;
  logical.logical = true;
  logical.service = ipc::ServiceId::kStorageServer;
  prefixes.define("storage", logical);
  ws.spawn("prefix-server", [&](ipc::Process p) { return prefixes.run(p); });

  double open_pinned = 0, open_logical = 0, add_ms = 0, del_ms = 0,
         list_ms = 0;
  const bool ok = bench::run_client(dom, ws, [&](ipc::Process self)
                                                  -> Co<void> {
    auto rt = co_await svc::Rt::attach(
        self, {fs_pid, naming::kDefaultContext});
    constexpr int kIters = 40;
    auto t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      auto opened =
          co_await rt.open("[data]f.dat", naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    open_pinned = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      auto opened = co_await rt.open("[storage]data/f.dat",
                                     naming::wire::kOpenRead);
      svc::File f = opened.take();
      (void)co_await f.close();
    }
    open_logical = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string name = "tmp" + std::to_string(i);
      const naming::ContextPair target{fs_pid, naming::kDefaultContext};
      (void)co_await rt.add_prefix(name, target);
    }
    add_ms = to_ms(self.now() - t0) / kIters;

    t0 = self.now();
    auto records = co_await rt.list_context("[]");
    list_ms = to_ms(self.now() - t0);
    std::printf("  (prefix context directory lists %zu entries)\n",
                records.value().size());

    t0 = self.now();
    for (int i = 0; i < kIters; ++i) {
      const std::string name = "tmp" + std::to_string(i);
      (void)co_await rt.delete_prefix(name);
    }
    del_ms = to_ms(self.now() - t0) / kIters;
  });
  if (!ok) return 1;

  bench::row("open through pinned prefix + close", open_pinned);
  bench::row("open through LOGICAL prefix (GetPid each use)", open_logical);
  bench::row("AddContextName", add_ms);
  bench::row("DeleteContextName", del_ms);
  bench::row("read the whole prefix context directory", list_ms);
  bench::note("");
  bench::note("the logical-entry premium is the per-use GetPid; the paper");
  bench::note("accepts it to keep generic service names valid across");
  bench::note("server restarts (section 6).");
  return bench::finish(json_path);
}
