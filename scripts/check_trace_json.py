#!/usr/bin/env python3
"""Validate a V-trace Chrome trace-event export.

Usage: check_trace_json.py [--flight] <trace.json>

Checks that the file is valid JSON in the trace-event "JSON object format"
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
a top-level object with a non-empty "traceEvents" list whose entries carry
the keys Perfetto needs, that duration events nest sanely, and that the
span tree contains at least one complete send -> hop chain.

With --flight the document is a flight-recorder post-mortem instead of a
resolution trace: the category requirement becomes "at least one
flight-* category" (the recorder emits zero-duration instants, one
category per FlightKind, rather than send/hop/queue/service spans).
"""
import json
import sys


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = sys.argv[1:]
    flight = False
    if args and args[0] == "--flight":
        flight = True
        args = args[1:]
    if len(args) != 1:
        fail("usage: check_trace_json.py [--flight] <trace.json>")
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    durations = 0
    categories = set()
    for i, ev in enumerate(events):
        for key in ("ph", "name", "pid"):
            if key not in ev:
                fail(f"event {i} missing required key {key!r}: {ev}")
        if ev["ph"] == "X":
            durations += 1
            for key in ("ts", "dur", "tid"):
                if key not in ev:
                    fail(f"duration event {i} missing {key!r}: {ev}")
            if ev["dur"] < 0:
                fail(f"duration event {i} has negative dur: {ev}")
            categories.add(ev.get("cat", ""))
        elif ev["ph"] == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                fail(f"unexpected metadata event {i}: {ev}")
        else:
            fail(f"unexpected phase {ev['ph']!r} in event {i}")

    if durations == 0:
        fail("no duration ('X') events recorded")
    if flight:
        if not any(c.startswith("flight-") for c in categories):
            fail(f"no flight-* category in the dump "
                 f"(saw: {sorted(categories)})")
    else:
        for needed in ("send", "hop", "queue", "service"):
            if needed not in categories:
                fail(f"no {needed!r}-category span in the export "
                     f"(saw: {sorted(categories)})")

    print(f"check_trace_json: OK: {durations} duration events, "
          f"categories {sorted(c for c in categories if c)}")


if __name__ == "__main__":
    main()
