#!/usr/bin/env bash
# Minimal CI: build + tier-1 tests, plain and under address/UB sanitizers.
#
#   scripts/ci.sh          # plain RelWithDebInfo build + ctest
#   scripts/ci.sh asan     # Debug + -fsanitize=address,undefined + ctest
#   scripts/ci.sh all      # both, plain first
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)"
}

case "${1:-default}" in
  default) run_preset default ;;
  asan)    run_preset asan ;;
  all)     run_preset default; run_preset asan ;;
  *) echo "usage: $0 [default|asan|all]" >&2; exit 2 ;;
esac
echo "CI OK"
