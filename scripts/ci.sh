#!/usr/bin/env bash
# CI pipeline: build + tier-1 tests, sanitizers, lint, schedule fuzz, and
# the checks-compiled-out build.
#
#   scripts/ci.sh          # plain RelWithDebInfo build + ctest
#   scripts/ci.sh asan     # Debug + -fsanitize=address,undefined + ctest
#   scripts/ci.sh sanitize # UBSan run of test_engine + test_cached_open,
#                          # plus a TSan build (build-only: the sim is
#                          # single-threaded, TSan proves it still links)
#   scripts/ci.sh lint     # clang-tidy over src/ (skips if not installed;
#                          # skips unchanged files via a content-hash cache)
#   scripts/ci.sh slint    # V-lint static analysis (tools/vlint): tree must
#                          # be clean, every seeded fixture must fail
#   scripts/ci.sh fuzz     # 16-seed deterministic schedule-fuzz sweep
#   scripts/ci.sh chk-off  # V_CHECKS=OFF: tests pass, chk symbols absent,
#                          # bench numbers bit-identical to the baseline
#   scripts/ci.sh trace    # V-trace: run the trace example, validate the
#                          # Chrome JSON, then prove the V_TRACE=OFF build
#                          # has no obs symbols and identical bench numbers
#   scripts/ci.sh bench-smoke  # run every bench with --json and validate
#                          # each report against the JsonReport schema
#   scripts/ci.sh perf     # engine-throughput gate: bench_engine --json,
#                          # fail on >25% events/wall-sec regression vs
#                          # the checked-in BENCH_engine.json
#   scripts/ci.sh fault    # V-fault: 16-seed chaos matrix, recovery bench,
#                          # then prove the V_FAULT=OFF build has no fault
#                          # symbols and identical E1-E6 bench numbers
#   scripts/ci.sh obs      # V-blackbox: flight-dump example + Perfetto JSON
#                          # validation, dump determinism, <5% recorder
#                          # overhead on timer-churn, and the V_TRACE=OFF
#                          # build symbol-free + bit-identical on E1-E6
#   scripts/ci.sh all      # everything, in the order above
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "$(nproc)"
}

run_sanitize() {
  echo "==> sanitize (UBSan run + TSan build)"
  echo "==> sanitize: ubsan configure/build"
  cmake --preset ubsan
  cmake --build --preset ubsan -j "$(nproc)" --target \
    test_engine test_cached_open
  echo "==> sanitize: ubsan run (test_engine, test_cached_open)"
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ./build-ubsan/tests/test_engine
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ./build-ubsan/tests/test_cached_open
  echo "==> sanitize: tsan build-only (the sim is single-threaded)"
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target \
    test_engine test_cached_open
  echo "sanitize OK"
}

run_lint() {
  echo "==> lint (clang-tidy)"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping lint stage"
    return 0
  fi
  cmake --preset default  # exports compile_commands.json (see the preset)
  # Content-hash cache: a TU is re-linted only when its preprocessor
  # dependency closure changes -- the .cpp itself plus every project header
  # it includes (headers are where HeaderFilterRegex findings come from, so
  # a header-only edit must re-lint its users), the .clang-tidy config, or
  # the clang-tidy version.
  local cache_dir=".cache/clang-tidy"
  mkdir -p "${cache_dir}"
  local config_hash
  config_hash=$( (clang-tidy --version; cat .clang-tidy) | sha256sum |
                 cut -d' ' -f1)
  local todo=() f h stamp
  while IFS= read -r -d '' f; do
    # Dep scan mirrors the default preset's flags; if it fails the list
    # degrades to just the TU, which only over-lints, never under-lints.
    h=$( { g++ -std=c++20 -Isrc -DV_CHECKS_ENABLED=1 -DV_FAULT_ENABLED=1 \
               -DV_TRACE_ENABLED=1 -MM -MT dep "$f" 2>/dev/null || true
           echo "$f"; } |
         sed 's/^dep://' | tr -d '\\' | tr ' ' '\n' | sed '/^$/d' |
         sort -u | xargs -r sha256sum | sha256sum | cut -d' ' -f1)
    stamp="${cache_dir}/${h}-${config_hash:0:16}"
    [[ -f "${stamp}" ]] || todo+=("${f}|${stamp}")
  done < <(find src -name '*.cpp' -print0)
  # Lint the cache misses in parallel; each success touches its stamp so a
  # failing file is retried on the next run.
  if ((${#todo[@]})); then
    printf '%s\0' "${todo[@]}" |
      xargs -0 -P "$(nproc)" -n 1 bash -c '
        f="${1%%|*}"; stamp="${1#*|}"
        clang-tidy -p build --quiet "$f" && touch "$stamp"
      ' _ || { echo "FAIL: clang-tidy findings" >&2; exit 1; }
  fi
  echo "lint OK (${#todo[@]} linted, $(find src -name '*.cpp' | wc -l) total)"
}

run_slint() {
  echo "==> slint (V-lint static analysis)"
  cmake --preset default  # exports compile_commands.json for --compdb
  echo "==> slint: tree must be clean"
  python3 tools/vlint/vlint.py --root . --compdb build/compile_commands.json
  echo "==> slint: every seeded fixture must fail with its rule"
  python3 tools/vlint/vlint.py --check-fixtures
  echo "slint OK"
}

run_fuzz() {
  echo "==> fuzz (16-seed schedule sweep)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target test_schedule_fuzz
  # Failures print a one-command repro line (V_FUZZ_SEED=0x... ...).
  V_FUZZ_SEEDS=16 ./build/tests/test_schedule_fuzz
  echo "fuzz OK"
}

run_chk_off() {
  echo "==> chk-off (V_CHECKS=OFF build)"
  run_preset chk-off
  echo "==> chk-off symbol check"
  # Zero-cost-when-disabled means compiled OUT, not stubbed: no v::chk::
  # symbol may survive in a linked test binary.
  if nm -C build-chk-off/tests/test_integration | grep -q 'v::chk::'; then
    echo "FAIL: v::chk:: symbols present in V_CHECKS=OFF binary" >&2
    nm -C build-chk-off/tests/test_integration | grep 'v::chk::' | head >&2
    exit 1
  fi
  echo "==> chk-off bench regression check"
  # The sim is deterministic, so compiling the checks out must not change a
  # single measured number: the report must be bit-identical to baseline.
  ./build-chk-off/bench/bench_server_team --json /tmp/bench_chk_off.json \
    >/dev/null
  diff BENCH_server_team.json /tmp/bench_chk_off.json
  echo "chk-off OK"
}

run_trace() {
  echo "==> trace (V-trace example + Chrome JSON validation)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target trace_resolution
  ./build/examples/trace_resolution /tmp/trace_ci.json
  python3 scripts/check_trace_json.py /tmp/trace_ci.json

  echo "==> trace-off (V_TRACE=OFF build)"
  run_preset trace-off
  echo "==> trace-off symbol check"
  # Compiled out means OUT: no v::obs:: symbol may survive in a linked
  # binary (same zero-cost-when-disabled bar V-check set).
  if nm -C build-trace-off/tests/test_integration | grep -q 'v::obs::'; then
    echo "FAIL: v::obs:: symbols present in V_TRACE=OFF binary" >&2
    nm -C build-trace-off/tests/test_integration | grep 'v::obs::' | head >&2
    exit 1
  fi
  echo "==> trace-off bench regression check"
  # Tracing and metrics never consume simulated time, so compiling them
  # out must not change a single measured number.
  ./build-trace-off/bench/bench_server_team --json /tmp/bench_trace_off.json \
    >/dev/null
  diff BENCH_server_team.json /tmp/bench_trace_off.json
  echo "trace OK"
}

run_bench_smoke() {
  echo "==> bench-smoke (every bench --json + schema validation)"
  cmake --preset default
  # bench_micro is the google-benchmark host-timing harness: it has its own
  # CLI and no JsonReport, so the smoke list is every vnames_bench target.
  local benches=(
    bench_ipc_transaction bench_bulk_transfer bench_stream_read
    bench_open_matrix bench_prefix_server bench_forwarding
    bench_context_directory bench_naming_models bench_group_send
    bench_name_cache bench_cached_open bench_server_team
    bench_fault_recovery
  )
  for b in "${benches[@]}"; do
    cmake --build --preset default -j "$(nproc)" --target "$b"
  done
  local reports=()
  for b in "${benches[@]}"; do
    echo "==> bench-smoke: $b"
    "./build/bench/$b" --json "/tmp/smoke_$b.json" >/dev/null
    reports+=("/tmp/smoke_$b.json")
  done
  python3 scripts/check_bench_json.py "${reports[@]}"
  # The two checked-in reports must regenerate identically (host timing
  # fields are the one legitimately machine-dependent part).
  diff BENCH_server_team.json /tmp/smoke_bench_server_team.json
  strip_host_timing BENCH_cached_open.json >/tmp/smoke_ref.json
  strip_host_timing /tmp/smoke_bench_cached_open.json >/tmp/smoke_new.json
  diff /tmp/smoke_ref.json /tmp/smoke_new.json
  echo "bench-smoke OK"
}

run_scale() {
  echo "==> scale (E14 production-day smoke: determinism + schema + safety)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target bench_scale
  # The shrunken day must pass its own acceptance gate (zero wrong replies,
  # churn handoff + handback) ...
  ./build/bench/bench_scale --smoke --json /tmp/scale_smoke1.json >/dev/null
  # ... twice, byte-identically: every number is simulated time, so two
  # runs of the same seed must produce the same JSON to the last digit.
  ./build/bench/bench_scale --smoke --json /tmp/scale_smoke2.json >/dev/null
  diff /tmp/scale_smoke1.json /tmp/scale_smoke2.json
  python3 scripts/check_bench_json.py /tmp/scale_smoke1.json
  echo "scale OK"
}

strip_host_timing() {
  sed -E 's/, "host_repeats": [0-9]+, "host_median_ms": [0-9.]+//' "$1"
}

run_perf() {
  echo "==> perf (engine throughput gate)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target bench_engine
  ./build/bench/bench_engine --json /tmp/bench_engine_ci.json >/dev/null
  # Schema first, then the regression gate: each workload's
  # events_per_wall_second must stay within 25% of the checked-in
  # baseline.  Deterministic fields (events, txns, sim_ms) regenerate
  # identically; wall-clock throughput is the one machine-dependent part,
  # hence a ratio gate instead of a diff.
  python3 scripts/check_bench_json.py --baseline BENCH_engine.json \
    /tmp/bench_engine_ci.json
  echo "perf OK"
}

run_fault() {
  echo "==> fault (chaos matrix + recovery bench)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target \
    test_fault test_fault_matrix test_crash_replies bench_fault_recovery
  # The loss-rate x crash-schedule x 16-seed chaos sweep, with the race
  # detector and protocol lint watching (the default build has V_CHECKS=ON).
  # Failures print a one-command repro line (V_FUZZ_SEED=0x... ...).
  V_FUZZ_SEEDS=16 ./build/tests/test_fault_matrix
  ./build/tests/test_fault
  ./build/tests/test_crash_replies
  echo "==> fault recovery bench"
  ./build/bench/bench_fault_recovery --json /tmp/bench_fault.json >/dev/null
  python3 scripts/check_bench_json.py /tmp/bench_fault.json
  # The checked-in report must regenerate identically (host timing fields
  # are the one legitimately machine-dependent part).
  strip_host_timing BENCH_fault_recovery.json >/tmp/fault_ref.json
  strip_host_timing /tmp/bench_fault.json >/tmp/fault_new.json
  diff /tmp/fault_ref.json /tmp/fault_new.json

  echo "==> fault-off (V_FAULT=OFF build)"
  run_preset fault-off
  echo "==> fault-off symbol check"
  # Zero-cost-when-disabled means compiled OUT, not stubbed: no v::fault::
  # symbol may survive in a linked test binary.
  if nm -C build-fault-off/tests/test_integration | grep -q 'v::fault::'; then
    echo "FAIL: v::fault:: symbols present in V_FAULT=OFF binary" >&2
    nm -C build-fault-off/tests/test_integration | grep 'v::fault::' | head >&2
    exit 1
  fi
  echo "==> fault-off bench regression check"
  # Reliability must be free when unused: with no FaultPlan installed, the
  # fault-aware kernel must produce the exact same numbers as a build that
  # never heard of faults, for every headline experiment.
  local benches=(
    bench_ipc_transaction bench_bulk_transfer bench_stream_read
    bench_open_matrix bench_prefix_server bench_forwarding
    bench_cached_open
  )
  for b in "${benches[@]}"; do
    cmake --build --preset default -j "$(nproc)" --target "$b"
    "./build/bench/$b" --json "/tmp/fault_on_$b.json" >/dev/null
    "./build-fault-off/bench/$b" --json "/tmp/fault_off_$b.json" >/dev/null
    strip_host_timing "/tmp/fault_on_$b.json" >"/tmp/fault_on_$b.stripped"
    strip_host_timing "/tmp/fault_off_$b.json" >"/tmp/fault_off_$b.stripped"
    diff "/tmp/fault_on_$b.stripped" "/tmp/fault_off_$b.stripped"
  done
  # The recovery bench still runs (baseline row only) without the subsystem.
  ./build-fault-off/bench/bench_fault_recovery \
    --json /tmp/bench_fault_off.json >/dev/null
  python3 scripts/check_bench_json.py /tmp/bench_fault_off.json
  echo "fault OK"
}

run_obs() {
  echo "==> obs (V-blackbox: flight recorder + sampling + overhead gates)"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" --target \
    flight_dump bench_engine test_obs test_fault_matrix

  echo "==> obs: automatic dump on retry exhaustion, Perfetto-loadable"
  ./build/examples/flight_dump /tmp/flight_ci.json
  python3 scripts/check_trace_json.py --flight /tmp/flight_ci.json

  echo "==> obs: sampling propagation + dump determinism tests"
  ./build/tests/test_obs
  ./build/tests/test_fault_matrix \
    --gtest_filter='FaultMatrix.FailingCellDumpIsByteIdentical'

  echo "==> obs: recorder overhead gate (<5% events/s on timer-churn)"
  # The always-on claim, measured where it hurts most: timer-churn is
  # nothing but event dispatches, and --flight re-runs it with the
  # recorder's fire hook attached to every one of them.  Both workloads
  # run back to back in ONE process (median of 5), so the ratio bounds
  # hook + record() cost itself, not cross-run machine noise; the
  # checked-in BENCH_engine.json still gates absolute speed at 25% in
  # the perf stage.
  ./build/bench/bench_engine --flight --repeat 5 \
    --json /tmp/bench_engine_flight.json >/dev/null
  python3 scripts/check_bench_json.py --max-regression 0.05 \
    --overhead timer-churn:timer-churn-flight /tmp/bench_engine_flight.json

  echo "==> obs: trace-off build (recorder compiled out)"
  cmake --preset trace-off
  cmake --build --preset trace-off -j "$(nproc)" --target test_integration
  echo "==> obs: trace-off symbol check"
  # The flight recorder and sampler live in v::obs:: and must vanish with
  # the rest of it: compiled out means OUT.
  if nm -C build-trace-off/tests/test_integration | grep -q 'v::obs::'; then
    echo "FAIL: v::obs:: symbols present in V_TRACE=OFF binary" >&2
    nm -C build-trace-off/tests/test_integration | grep 'v::obs::' | head >&2
    exit 1
  fi
  echo "==> obs: trace-off byte-identity on the headline experiments"
  # Recording costs host time only, never simulated time: every E1-E6
  # measured number must be bit-identical with the recorder compiled out.
  local benches=(
    bench_ipc_transaction bench_bulk_transfer bench_stream_read
    bench_open_matrix bench_prefix_server bench_forwarding
  )
  for b in "${benches[@]}"; do
    cmake --build --preset default -j "$(nproc)" --target "$b"
    cmake --build --preset trace-off -j "$(nproc)" --target "$b"
    "./build/bench/$b" --json "/tmp/obs_on_$b.json" >/dev/null
    "./build-trace-off/bench/$b" --json "/tmp/obs_off_$b.json" >/dev/null
    strip_host_timing "/tmp/obs_on_$b.json" >"/tmp/obs_on_$b.stripped"
    strip_host_timing "/tmp/obs_off_$b.json" >"/tmp/obs_off_$b.stripped"
    diff "/tmp/obs_on_$b.stripped" "/tmp/obs_off_$b.stripped"
  done
  echo "obs OK"
}

case "${1:-default}" in
  default) run_preset default ;;
  asan)    run_preset asan ;;
  sanitize) run_sanitize ;;
  lint)    run_lint ;;
  slint)   run_slint ;;
  fuzz)    run_fuzz ;;
  chk-off) run_chk_off ;;
  trace)   run_trace ;;
  bench-smoke) run_bench_smoke ;;
  scale)   run_scale ;;
  perf)    run_perf ;;
  fault)   run_fault ;;
  obs)     run_obs ;;
  all)     run_preset default; run_preset asan; run_sanitize; run_lint
           run_slint; run_fuzz; run_chk_off; run_trace; run_bench_smoke
           run_scale; run_perf; run_fault; run_obs ;;
  *) echo "usage: $0 [default|asan|sanitize|lint|slint|fuzz|chk-off|trace|bench-smoke|scale|perf|fault|all|obs]" >&2
     exit 2 ;;
esac
echo "CI OK"
