#!/usr/bin/env python3
"""Validate the schema of bench --json reports (bench_util.hpp JsonReport).

Usage: check_bench_json.py report.json [more.json ...]

Expected shape:
  {
    "run": {                       # optional
      "seed": "0x...", "schedule": "fifo"|"fuzz", "calibration": str,
      "host_repeats": int > 0,     # optional, paired with host_median_ms
      "host_median_ms": number,
      "namecache": {"hits": int, "misses": int,
                    "stale": int, "fallbacks": int}   # optional
    },
    "sections": [
      {"id": str, "title": str,
       "rows": [{"label": str, "measured_ms": number,
                 "paper_ms": number}],   # paper_ms optional
       "notes": [str]}
    ]
  }
"""
import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def check(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(path, f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")

    run = doc.get("run")
    if run is not None:
        if not isinstance(run, dict):
            return fail(path, '"run" must be an object')
        for key, typ in (("seed", str), ("schedule", str),
                         ("calibration", str)):
            if not isinstance(run.get(key), typ):
                return fail(path, f'"run.{key}" must be {typ.__name__}')
        if run["schedule"] not in ("fifo", "fuzz"):
            return fail(path, '"run.schedule" must be "fifo" or "fuzz"')
        if ("host_repeats" in run) != ("host_median_ms" in run):
            return fail(path, "host_repeats and host_median_ms come in pairs")
        if "host_repeats" in run:
            if not isinstance(run["host_repeats"], int) or \
                    run["host_repeats"] < 1:
                return fail(path, '"run.host_repeats" must be a positive int')
            if not isinstance(run["host_median_ms"], (int, float)):
                return fail(path, '"run.host_median_ms" must be a number')
        cache = run.get("namecache")
        if cache is not None:
            if not isinstance(cache, dict):
                return fail(path, '"run.namecache" must be an object')
            for key in ("hits", "misses", "stale", "fallbacks"):
                if not isinstance(cache.get(key), int) or cache[key] < 0:
                    return fail(
                        path, f'"run.namecache.{key}" must be a non-negative '
                        "int")

    sections = doc.get("sections")
    if not isinstance(sections, list) or not sections:
        return fail(path, '"sections" must be a non-empty list')
    for i, sec in enumerate(sections):
        where = f"sections[{i}]"
        if not isinstance(sec, dict):
            return fail(path, f"{where} must be an object")
        for key in ("id", "title"):
            if not isinstance(sec.get(key), str):
                return fail(path, f'{where}.{key} must be a string')
        rows = sec.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"{where}.rows must be a list")
        for j, row in enumerate(rows):
            rwhere = f"{where}.rows[{j}]"
            if not isinstance(row, dict):
                return fail(path, f"{rwhere} must be an object")
            if not isinstance(row.get("label"), str):
                return fail(path, f'{rwhere}.label must be a string')
            if not isinstance(row.get("measured_ms"), (int, float)):
                return fail(path, f'{rwhere}.measured_ms must be a number')
            if "paper_ms" in row and \
                    not isinstance(row["paper_ms"], (int, float)):
                return fail(path, f'{rwhere}.paper_ms must be a number')
            extra = set(row) - {"label", "measured_ms", "paper_ms"}
            if extra:
                return fail(path, f"{rwhere} has unknown keys {sorted(extra)}")
        notes = sec.get("notes")
        if not isinstance(notes, list) or \
                any(not isinstance(n, str) for n in notes):
            return fail(path, f"{where}.notes must be a list of strings")
    print(f"OK   {path}: {len(sections)} section(s), "
          f"{sum(len(s['rows']) for s in sections)} row(s)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return max(check(p) for p in argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
