#!/usr/bin/env python3
"""Validate the schema of bench --json reports (bench_util.hpp JsonReport).

Usage: check_bench_json.py [--baseline BASELINE.json]
                           [--max-regression FRACTION] [--workload NAME]
                           [--overhead BASE:NEW]
                           report.json [more.json ...]

Expected shape:
  {
    "run": {                       # optional
      "seed": "0x...", "schedule": "fifo"|"fuzz", "calibration": str,
      "host_repeats": int > 0,     # optional, paired with host_median_ms
      "host_median_ms": number,
      "namecache": {"hits": int, "misses": int,
                    "stale": int, "fallbacks": int},  # optional
      "obs": {"sample_rate": number in [0,1],         # optional
              "flight_capacity": int}
    },
    "engine": [                    # optional (bench_engine throughput)
      {"workload": str, "events": int, "txns": int,
       "wall_ms": number, "sim_ms": number,
       "events_per_wall_second": number, "txns_per_wall_second": number}
    ],
    "scale": [                     # optional (bench_scale production day)
      {"cell": str, "shards": int > 0, "hosts": int > 0,
       "opens": int, "errors": int, "wrong": int,   # wrong must be 0
       "throughput_per_s": number, "p50_ms": number, "p99_ms": number,
       "flash_p99_ms": number, "map_fetches": int, "stale_retries": int,
       "noreply_retries": int, "handoffs": int, "handbacks": int}
    ],
    "sections": [
      {"id": str, "title": str,
       "rows": [{"label": str, "measured_ms": number,
                 "paper_ms": number}],   # paper_ms optional
       "notes": [str]}
    ]
  }

With --baseline, every workload in the baseline's "engine" array must also
appear in each report with events_per_wall_second no more than 25% below
the baseline value (the CI perf gate: host timing is noisy, a quarter is
not noise).  --max-regression tightens or loosens that fraction, and
--workload restricts the comparison to one named workload.

--overhead BASE:NEW compares two workloads WITHIN each report instead:
NEW's events_per_wall_second must be within --max-regression of BASE's.
The obs stage uses this for the flight-recorder gate
(--max-regression 0.05 --overhead timer-churn:timer-churn-flight):
both workloads run back to back in one process, so the ratio isolates
the recorder's cost from cross-run machine noise.
"""
import json
import sys

# CI perf gate: fail when throughput drops more than this fraction below
# the checked-in baseline.
MAX_REGRESSION = 0.25


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def check(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return fail(path, f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")

    run = doc.get("run")
    if run is not None:
        if not isinstance(run, dict):
            return fail(path, '"run" must be an object')
        for key, typ in (("seed", str), ("schedule", str),
                         ("calibration", str)):
            if not isinstance(run.get(key), typ):
                return fail(path, f'"run.{key}" must be {typ.__name__}')
        if run["schedule"] not in ("fifo", "fuzz"):
            return fail(path, '"run.schedule" must be "fifo" or "fuzz"')
        if ("host_repeats" in run) != ("host_median_ms" in run):
            return fail(path, "host_repeats and host_median_ms come in pairs")
        if "host_repeats" in run:
            if not isinstance(run["host_repeats"], int) or \
                    run["host_repeats"] < 1:
                return fail(path, '"run.host_repeats" must be a positive int')
            if not isinstance(run["host_median_ms"], (int, float)):
                return fail(path, '"run.host_median_ms" must be a number')
        cache = run.get("namecache")
        if cache is not None:
            if not isinstance(cache, dict):
                return fail(path, '"run.namecache" must be an object')
            for key in ("hits", "misses", "stale", "fallbacks"):
                if not isinstance(cache.get(key), int) or cache[key] < 0:
                    return fail(
                        path, f'"run.namecache.{key}" must be a non-negative '
                        "int")
        obs = run.get("obs")
        if obs is not None:
            if not isinstance(obs, dict):
                return fail(path, '"run.obs" must be an object')
            rate = obs.get("sample_rate")
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                return fail(
                    path, '"run.obs.sample_rate" must be a number in [0, 1]')
            cap = obs.get("flight_capacity")
            if not isinstance(cap, int) or cap < 0:
                return fail(
                    path,
                    '"run.obs.flight_capacity" must be a non-negative int')

    engine = doc.get("engine")
    if engine is not None:
        if not isinstance(engine, list) or not engine:
            return fail(path, '"engine" must be a non-empty list')
        for i, wl in enumerate(engine):
            where = f"engine[{i}]"
            if not isinstance(wl, dict):
                return fail(path, f"{where} must be an object")
            if not isinstance(wl.get("workload"), str):
                return fail(path, f'{where}.workload must be a string')
            for key in ("events", "txns"):
                if not isinstance(wl.get(key), int) or wl[key] < 0:
                    return fail(
                        path, f"{where}.{key} must be a non-negative int")
            for key in ("wall_ms", "sim_ms", "events_per_wall_second",
                        "txns_per_wall_second"):
                if not isinstance(wl.get(key), (int, float)) or wl[key] < 0:
                    return fail(
                        path, f"{where}.{key} must be a non-negative number")
            extra = set(wl) - {"workload", "events", "txns", "wall_ms",
                               "sim_ms", "events_per_wall_second",
                               "txns_per_wall_second"}
            if extra:
                return fail(path, f"{where} has unknown keys {sorted(extra)}")

    scale = doc.get("scale")
    if scale is not None:
        if not isinstance(scale, list) or not scale:
            return fail(path, '"scale" must be a non-empty list')
        for i, cell in enumerate(scale):
            where = f"scale[{i}]"
            if not isinstance(cell, dict):
                return fail(path, f"{where} must be an object")
            if not isinstance(cell.get("cell"), str):
                return fail(path, f'{where}.cell must be a string')
            for key in ("shards", "hosts"):
                if not isinstance(cell.get(key), int) or cell[key] < 1:
                    return fail(path, f"{where}.{key} must be a positive int")
            for key in ("opens", "errors", "wrong", "map_fetches",
                        "stale_retries", "noreply_retries", "handoffs",
                        "handbacks"):
                if not isinstance(cell.get(key), int) or cell[key] < 0:
                    return fail(
                        path, f"{where}.{key} must be a non-negative int")
            for key in ("throughput_per_s", "p50_ms", "p99_ms",
                        "flash_p99_ms"):
                if not isinstance(cell.get(key), (int, float)) or \
                        cell[key] < 0:
                    return fail(
                        path, f"{where}.{key} must be a non-negative number")
            # The E14 safety gate is schema-level: a report recording a
            # wrong reply is invalid, not merely a failed acceptance line.
            if cell["wrong"] != 0:
                return fail(path, f'{where}.wrong must be 0, '
                            f'got {cell["wrong"]}')
            extra = set(cell) - {"cell", "shards", "hosts", "opens",
                                 "errors", "wrong", "throughput_per_s",
                                 "p50_ms", "p99_ms", "flash_p99_ms",
                                 "map_fetches", "stale_retries",
                                 "noreply_retries", "handoffs", "handbacks"}
            if extra:
                return fail(path, f"{where} has unknown keys {sorted(extra)}")

    sections = doc.get("sections")
    if not isinstance(sections, list) or not sections:
        return fail(path, '"sections" must be a non-empty list')
    for i, sec in enumerate(sections):
        where = f"sections[{i}]"
        if not isinstance(sec, dict):
            return fail(path, f"{where} must be an object")
        for key in ("id", "title"):
            if not isinstance(sec.get(key), str):
                return fail(path, f'{where}.{key} must be a string')
        rows = sec.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"{where}.rows must be a list")
        for j, row in enumerate(rows):
            rwhere = f"{where}.rows[{j}]"
            if not isinstance(row, dict):
                return fail(path, f"{rwhere} must be an object")
            if not isinstance(row.get("label"), str):
                return fail(path, f'{rwhere}.label must be a string')
            if not isinstance(row.get("measured_ms"), (int, float)):
                return fail(path, f'{rwhere}.measured_ms must be a number')
            if "paper_ms" in row and \
                    not isinstance(row["paper_ms"], (int, float)):
                return fail(path, f'{rwhere}.paper_ms must be a number')
            extra = set(row) - {"label", "measured_ms", "paper_ms"}
            if extra:
                return fail(path, f"{rwhere} has unknown keys {sorted(extra)}")
        notes = sec.get("notes")
        if not isinstance(notes, list) or \
                any(not isinstance(n, str) for n in notes):
            return fail(path, f"{where}.notes must be a list of strings")
    print(f"OK   {path}: {len(sections)} section(s), "
          f"{sum(len(s['rows']) for s in sections)} row(s)")
    return 0


def check_baseline(baseline_path, report_path, max_regression, workload):
    """Perf gate: report throughput must stay within max_regression of the
    checked-in baseline, for every engine workload (or just `workload`)."""
    with open(baseline_path) as f:
        base = {wl["workload"]: wl
                for wl in json.load(f).get("engine", [])}
    with open(report_path) as f:
        new = {wl["workload"]: wl
               for wl in json.load(f).get("engine", [])}
    if not base:
        return fail(baseline_path, 'baseline has no "engine" workloads')
    if workload is not None:
        if workload not in base:
            return fail(baseline_path,
                        f'workload "{workload}" not in baseline')
        base = {workload: base[workload]}
    rc = 0
    for name, bwl in sorted(base.items()):
        if name not in new:
            rc = fail(report_path, f'workload "{name}" missing from report')
            continue
        base_eps = bwl["events_per_wall_second"]
        new_eps = new[name]["events_per_wall_second"]
        floor = base_eps * (1.0 - max_regression)
        verdict = "OK  " if new_eps >= floor else "FAIL"
        print(f"{verdict} perf {name}: {new_eps:,.0f} events/s "
              f"(baseline {base_eps:,.0f}, floor {floor:,.0f})")
        if new_eps < floor:
            rc = fail(
                report_path,
                f'"{name}" regressed >{max_regression:.0%}: '
                f"{new_eps:,.0f} < {floor:,.0f} events/s")
    return rc


def check_overhead(report_path, base_name, new_name, max_regression):
    """Within-report gate: workload `new_name` must be within
    max_regression of workload `base_name` (events_per_wall_second)."""
    with open(report_path) as f:
        engine = {wl["workload"]: wl
                  for wl in json.load(f).get("engine", [])}
    for name in (base_name, new_name):
        if name not in engine:
            return fail(report_path, f'workload "{name}" not in report')
    base_eps = engine[base_name]["events_per_wall_second"]
    new_eps = engine[new_name]["events_per_wall_second"]
    if base_eps <= 0:
        return fail(report_path, f'"{base_name}" has zero throughput')
    floor = base_eps * (1.0 - max_regression)
    overhead = 1.0 - new_eps / base_eps
    verdict = "OK  " if new_eps >= floor else "FAIL"
    print(f"{verdict} overhead {new_name} vs {base_name}: "
          f"{new_eps:,.0f} vs {base_eps:,.0f} events/s "
          f"({overhead:+.1%}, budget {max_regression:.0%})")
    if new_eps < floor:
        return fail(
            report_path,
            f'"{new_name}" costs >{max_regression:.0%} over "{base_name}": '
            f"{new_eps:,.0f} < {floor:,.0f} events/s")
    return 0


def main(argv):
    baseline = None
    max_regression = MAX_REGRESSION
    workload = None
    overhead = None
    args = argv[1:]
    while args and args[0].startswith("--"):
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        flag, value = args[0], args[1]
        if flag == "--baseline":
            baseline = value
        elif flag == "--max-regression":
            try:
                max_regression = float(value)
            except ValueError:
                print(__doc__, file=sys.stderr)
                return 2
            if not 0.0 < max_regression < 1.0:
                print("--max-regression must be in (0, 1)", file=sys.stderr)
                return 2
        elif flag == "--workload":
            workload = value
        elif flag == "--overhead":
            if ":" not in value:
                print("--overhead expects BASE:NEW workload names",
                      file=sys.stderr)
                return 2
            overhead = tuple(value.split(":", 1))
        else:
            print(__doc__, file=sys.stderr)
            return 2
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    rc = max(check(p) for p in args)
    if baseline is not None:
        rc = max([rc] + [check_baseline(baseline, p, max_regression, workload)
                         for p in args])
    if overhead is not None:
        rc = max([rc] + [check_overhead(p, overhead[0], overhead[1],
                                        max_regression)
                         for p in args])
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
